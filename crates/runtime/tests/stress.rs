//! Stress and property tests for the execution substrate.

use pmcmc_runtime::{
    list_schedule_makespan, list_schedule_makespan_naive, lpt_makespan, lpt_order,
    makespan_lower_bound, SpinTeam, WorkerPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[test]
fn pool_survives_many_heterogeneous_batches() {
    let pool = WorkerPool::new(6);
    let total = AtomicU64::new(0);
    for round in 0..50u64 {
        let n = (round % 13 + 1) as usize;
        let tasks: Vec<(f64, _)> = (0..n)
            .map(|i| {
                let t = &total;
                let w = (i % 3) as f64 + 0.5;
                (w, move || {
                    // Mix of trivial and slightly heavier work.
                    let mut acc = 0u64;
                    for k in 0..(i as u64 % 5) * 1000 + 10 {
                        acc = acc.wrapping_add(k * k);
                    }
                    t.fetch_add(1, Ordering::Relaxed);
                    acc
                })
            })
            .collect();
        let out = pool.run_batch(tasks);
        assert_eq!(out.len(), n);
    }
    assert_eq!(
        total.load(Ordering::Relaxed),
        (0..50u64).map(|r| r % 13 + 1).sum::<u64>()
    );
    let stats = pool.stats();
    assert_eq!(stats.batches, 50);
}

#[test]
fn pool_nested_parallelism_via_two_pools() {
    // A pool task may itself submit to a different pool (periodic sampler's
    // local phases inside an application pool, for instance).
    let outer = WorkerPool::new(2);
    let inner = std::sync::Arc::new(WorkerPool::new(2));
    let results = outer.run_batch(
        (0..4)
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                (1.0, move || {
                    let out = inner.map(vec![i; 3], |x: i32| x * 2);
                    out.iter().sum::<i32>()
                })
            })
            .collect(),
    );
    assert_eq!(results, vec![0, 6, 12, 18]);
}

#[test]
fn spin_team_interleaved_with_pool() {
    // Both substrates active at once, as in periodic + speculative runs.
    let pool = WorkerPool::new(4);
    let team = SpinTeam::new(4);
    for _ in 0..20 {
        let hits = AtomicUsize::new(0);
        team.broadcast(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        let out = pool.map(vec![1u64, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}

#[test]
fn spin_team_heavy_round_count() {
    let team = SpinTeam::new(3);
    let counter = AtomicU64::new(0);
    for _ in 0..10_000 {
        team.broadcast(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(counter.load(Ordering::Relaxed), 30_000);
}

#[test]
fn spin_team_zero_members_clamps_to_one() {
    // `SpinTeam::new(0)` must not underflow the helper count: it clamps to
    // a single-member team whose broadcasts run inline on the caller.
    let team = SpinTeam::new(0);
    assert_eq!(team.members(), 1);
    let out = team.broadcast_map(|id| id + 100);
    assert_eq!(out, vec![100]);
}

#[test]
fn spin_team_single_member_reusable_after_empty_workloads() {
    let team = SpinTeam::new(1);
    // Broadcasting a no-op many times must neither hang nor leak rounds.
    for _ in 0..100 {
        team.broadcast(|_| {});
    }
    let out = team.broadcast_map(|id| id);
    assert_eq!(out, vec![0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heap-based list scheduler and the naive O(n·m) reference make
    /// identical placement decisions, so their makespans agree exactly —
    /// in both FIFO and LPT submission order.
    #[test]
    fn heap_and_naive_list_schedulers_agree(
        workers in 1usize..9,
        weights in prop::collection::vec(0.01f64..10.0, 0..40),
    ) {
        let fifo: Vec<usize> = (0..weights.len()).collect();
        let lpt = lpt_order(&weights);
        for order in [&fifo, &lpt] {
            let heap = list_schedule_makespan(&weights, order, workers);
            let naive = list_schedule_makespan_naive(&weights, order, workers);
            prop_assert_eq!(
                heap.to_bits(),
                naive.to_bits(),
                "heap {} vs naive {} (workers {})",
                heap,
                naive,
                workers
            );
        }
    }

    /// Results always return in task order regardless of weights/threads.
    #[test]
    fn pool_preserves_result_order(
        threads in 1usize..8,
        weights in prop::collection::vec(0.0f64..10.0, 1..40),
    ) {
        let pool = WorkerPool::new(threads);
        let tasks: Vec<(f64, _)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, move || i))
            .collect();
        let out = pool.run_batch(tasks);
        prop_assert_eq!(out, (0..weights.len()).collect::<Vec<_>>());
    }

    /// LPT order is a permutation sorted by descending weight.
    #[test]
    fn lpt_order_is_sorted_permutation(weights in prop::collection::vec(0.0f64..100.0, 0..50)) {
        let order = lpt_order(&weights);
        let mut seen = vec![false; weights.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        for w in order.windows(2) {
            prop_assert!(weights[w[0]] >= weights[w[1]]);
        }
    }

    /// The Graham bound: LPT makespan ≤ (4/3 − 1/(3m))·OPT ≤ (4/3)·LB…
    /// checked against the lower bound, and LPT never loses to the
    /// identity (FIFO) order by more than the bound either.
    #[test]
    fn lpt_respects_graham_bound(
        workers in 1usize..10,
        weights in prop::collection::vec(0.01f64..100.0, 1..60),
    ) {
        let lpt = lpt_makespan(&weights, workers);
        let lb = makespan_lower_bound(&weights, workers);
        prop_assert!(lpt >= lb - 1e-9, "makespan below lower bound");
        let bound = (4.0 / 3.0 - 1.0 / (3.0 * workers as f64)) * lb * (1.0 + 1e-9);
        // LB ≤ OPT, so LPT ≤ (4/3−1/3m)·OPT ≤ … may exceed (4/3−1/3m)·LB in
        // theory; Graham's bound is vs OPT. Use the safe 4/3·LB + max as an
        // envelope: makespan ≤ total/m + max.
        let total: f64 = weights.iter().sum();
        let max = weights.iter().copied().fold(0.0, f64::max);
        prop_assert!(lpt <= total / workers as f64 + max + 1e-9);
        let _ = bound;
    }

    /// Greedy list scheduling never idles a worker while tasks wait:
    /// makespan ≤ total/m + max for any order.
    #[test]
    fn list_scheduling_envelope(
        workers in 1usize..8,
        weights in prop::collection::vec(0.01f64..50.0, 1..40),
    ) {
        let order: Vec<usize> = (0..weights.len()).collect();
        let ms = list_schedule_makespan(&weights, &order, workers);
        let total: f64 = weights.iter().sum();
        let max = weights.iter().copied().fold(0.0, f64::max);
        prop_assert!(ms <= total / workers as f64 + max + 1e-9);
        prop_assert!(ms >= makespan_lower_bound(&weights, workers) - 1e-9);
    }

    /// broadcast_map returns every member's value in member order.
    #[test]
    fn team_broadcast_map_order(members in 1usize..6, base in 0usize..1000) {
        let team = SpinTeam::new(members);
        let out = team.broadcast_map(|id| base + id);
        prop_assert_eq!(out, (base..base + members).collect::<Vec<_>>());
    }
}
