//! # pmcmc-runtime
//!
//! Task-scheduling substrate for the `pmcmc` workspace.
//!
//! §VI of the reproduced paper relies on two execution services that are
//! built here from scratch on top of `std::thread`, `crossbeam` channels
//! and `parking_lot` primitives:
//!
//! * [`pool::WorkerPool`] — a persistent pool executing *weighted* batches
//!   of borrowed tasks in longest-processing-time-first order; used by the
//!   partitioning samplers where partitions receive unequal iteration
//!   budgets ("the processor dead-time ... can be reclaimed through the use
//!   of a task scheduler").
//! * [`team::SpinTeam`] — a spinning broadcast team with sub-microsecond
//!   round dispatch; used by speculative moves where one round lasts about
//!   one MCMC iteration.
//! * [`scheduler`] — pure LPT ordering and makespan prediction, testable in
//!   isolation.
//! * [`cluster`] — the eq. (4) `s × t` topology shape ([`ClusterTopology`],
//!   [`NodeId`]) and the per-node [`Admission`] semaphore the sharded
//!   execution backend builds its simulated multi-node cluster from.
//! * [`wire`] — the versioned, length-prefixed binary format the
//!   distributed backend speaks over sockets (and the serialisation
//!   substrate for checkpoint/resume).
//! * [`net`] — framed blocking TCP transport ([`FrameConn`]) carrying
//!   [`wire`] frames between the coordinator and node daemons.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cluster;
pub mod net;
pub mod pool;
pub mod scheduler;
pub mod team;
pub mod wire;

pub use cluster::{Admission, ClusterTopology, NodeId};
pub use net::FrameConn;
pub use pool::{PoolStats, WorkerPool};
pub use scheduler::{
    list_schedule_makespan, list_schedule_makespan_naive, lpt_makespan, lpt_order,
    makespan_lower_bound,
};
pub use team::SpinTeam;
