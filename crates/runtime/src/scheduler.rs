//! Weighted task ordering and makespan prediction.
//!
//! §VI of the paper: partitions receive different iteration budgets, so
//! "the time taken to complete the assigned iterations will vary
//! considerably ... The processor dead-time that results can be reclaimed
//! through the use of a task scheduler, allowing more partitions than there
//! are available processors to be employed."
//!
//! With a shared work queue, submitting tasks in longest-processing-time
//! (LPT) order yields the classic Graham list-scheduling bound of
//! `(4/3 − 1/(3m))·OPT` on the makespan.

/// Returns task indices ordered by descending weight (LPT submission
/// order). Ties keep the original relative order (stable).
#[must_use]
pub fn lpt_order(weights: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..weights.len()).collect();
    idx.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Simulates greedy list scheduling of `weights` (in the given order) onto
/// `workers` identical machines and returns the resulting makespan.
#[must_use]
pub fn list_schedule_makespan(weights: &[f64], order: &[usize], workers: usize) -> f64 {
    assert!(workers >= 1, "need at least one worker");
    let mut loads = vec![0.0f64; workers];
    for &i in order {
        // Next task goes to the least-loaded machine.
        let (min_idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("workers >= 1");
        loads[min_idx] += weights[i];
    }
    loads.iter().copied().fold(0.0, f64::max)
}

/// Predicted makespan of LPT scheduling `weights` onto `workers` machines.
#[must_use]
pub fn lpt_makespan(weights: &[f64], workers: usize) -> f64 {
    list_schedule_makespan(weights, &lpt_order(weights), workers)
}

/// A trivial lower bound on the optimal makespan:
/// `max(max weight, total / workers)`.
#[must_use]
pub fn makespan_lower_bound(weights: &[f64], workers: usize) -> f64 {
    assert!(workers >= 1, "need at least one worker");
    let total: f64 = weights.iter().sum();
    let max = weights.iter().copied().fold(0.0, f64::max);
    max.max(total / workers as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_order_descending() {
        let w = [1.0, 5.0, 3.0, 5.0];
        assert_eq!(lpt_order(&w), vec![1, 3, 2, 0]);
    }

    #[test]
    fn lpt_order_empty() {
        assert!(lpt_order(&[]).is_empty());
    }

    #[test]
    fn single_worker_makespan_is_total() {
        let w = [2.0, 3.0, 4.0];
        assert!((lpt_makespan(&w, 1) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn classic_lpt_example() {
        // Weights 7,7,6,6,5,4,4,4,3 on 3 machines: LPT gives 16 (OPT 15.33 LB).
        let w = [7.0, 7.0, 6.0, 6.0, 5.0, 4.0, 4.0, 4.0, 3.0];
        let ms = lpt_makespan(&w, 3);
        assert!(ms <= 17.0, "LPT makespan {ms}");
        assert!(ms >= makespan_lower_bound(&w, 3));
    }

    #[test]
    fn lpt_beats_or_matches_fifo_here() {
        // Adversarial FIFO order: big task last forces imbalance.
        let w = [1.0, 1.0, 1.0, 9.0];
        let fifo = list_schedule_makespan(&w, &[0, 1, 2, 3], 2);
        let lpt = lpt_makespan(&w, 2);
        assert!(lpt <= fifo);
        assert!((lpt - 9.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_dominated_by_largest_task() {
        let w = [10.0, 1.0, 1.0];
        assert!((makespan_lower_bound(&w, 4) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn graham_bound_holds_on_random_inputs() {
        // LPT ≤ (4/3 − 1/(3m))·OPT ≤ (4/3)·LB is implied; check vs LB.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX) * 10.0 + 0.01
        };
        for m in 1..=8usize {
            let w: Vec<f64> = (0..23).map(|_| next()).collect();
            let ms = lpt_makespan(&w, m);
            let lb = makespan_lower_bound(&w, m);
            assert!(
                ms <= (4.0 / 3.0) * lb + 1e-9,
                "m={m}: LPT {ms} vs 4/3·LB {}",
                (4.0 / 3.0) * lb
            );
        }
    }
}
