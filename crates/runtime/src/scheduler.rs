//! Weighted task ordering and makespan prediction.
//!
//! §VI of the paper: partitions receive different iteration budgets, so
//! "the time taken to complete the assigned iterations will vary
//! considerably ... The processor dead-time that results can be reclaimed
//! through the use of a task scheduler, allowing more partitions than there
//! are available processors to be employed."
//!
//! With a shared work queue, submitting tasks in longest-processing-time
//! (LPT) order yields the classic Graham list-scheduling bound of
//! `(4/3 − 1/(3m))·OPT` on the makespan.

/// Returns task indices ordered by descending weight (LPT submission
/// order). Ties keep the original relative order (stable).
#[must_use]
pub fn lpt_order(weights: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..weights.len()).collect();
    idx.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// A machine's running load, ordered so a min-heap pops the least-loaded
/// machine — ties broken by the lowest worker index, matching the "first
/// minimum" the naive linear scan picks (so the two implementations make
/// identical placement decisions, float-for-float).
#[derive(PartialEq)]
struct Slot {
    load: f64,
    worker: usize,
}

impl Eq for Slot {}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.load
            .total_cmp(&other.load)
            .then(self.worker.cmp(&other.worker))
    }
}

/// Simulates greedy list scheduling of `weights` (in the given order) onto
/// `workers` identical machines and returns the resulting makespan.
///
/// Runs in `O(n log m)` via a binary min-heap over machine loads; the
/// `O(n·m)` linear-scan reference survives as
/// [`list_schedule_makespan_naive`] and the two are property-tested to
/// agree exactly on random weight vectors.
#[must_use]
pub fn list_schedule_makespan(weights: &[f64], order: &[usize], workers: usize) -> f64 {
    assert!(workers >= 1, "need at least one worker");
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<Slot>> = (0..workers)
        .map(|worker| Reverse(Slot { load: 0.0, worker }))
        .collect();
    for &i in order {
        // Next task goes to the least-loaded machine.
        let Reverse(Slot { load, worker }) = heap.pop().expect("workers >= 1");
        heap.push(Reverse(Slot {
            load: load + weights[i],
            worker,
        }));
    }
    heap.into_iter()
        .map(|Reverse(slot)| slot.load)
        .fold(0.0, f64::max)
}

/// The original `O(n·m)` linear-min-scan list scheduler, kept as the
/// reference implementation the heap version is property-tested against.
#[must_use]
pub fn list_schedule_makespan_naive(weights: &[f64], order: &[usize], workers: usize) -> f64 {
    assert!(workers >= 1, "need at least one worker");
    let mut loads = vec![0.0f64; workers];
    for &i in order {
        // Next task goes to the least-loaded machine.
        let (min_idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("workers >= 1");
        loads[min_idx] += weights[i];
    }
    loads.iter().copied().fold(0.0, f64::max)
}

/// Predicted makespan of LPT scheduling `weights` onto `workers` machines.
#[must_use]
pub fn lpt_makespan(weights: &[f64], workers: usize) -> f64 {
    list_schedule_makespan(weights, &lpt_order(weights), workers)
}

/// A trivial lower bound on the optimal makespan:
/// `max(max weight, total / workers)`.
#[must_use]
pub fn makespan_lower_bound(weights: &[f64], workers: usize) -> f64 {
    assert!(workers >= 1, "need at least one worker");
    let total: f64 = weights.iter().sum();
    let max = weights.iter().copied().fold(0.0, f64::max);
    max.max(total / workers as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_order_descending() {
        let w = [1.0, 5.0, 3.0, 5.0];
        assert_eq!(lpt_order(&w), vec![1, 3, 2, 0]);
    }

    #[test]
    fn lpt_order_empty() {
        assert!(lpt_order(&[]).is_empty());
    }

    #[test]
    fn lpt_order_ties_are_stable() {
        // Equal weights keep their original relative order.
        let w = [2.0, 1.0, 2.0, 1.0, 2.0];
        assert_eq!(lpt_order(&w), vec![0, 2, 4, 1, 3]);
        let uniform = [3.5; 6];
        assert_eq!(lpt_order(&uniform), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_weights_schedule_to_zero_makespan() {
        assert_eq!(lpt_makespan(&[], 4), 0.0);
        assert_eq!(list_schedule_makespan(&[], &[], 1), 0.0);
        assert_eq!(list_schedule_makespan_naive(&[], &[], 3), 0.0);
        // The lower bound of an empty task set is zero too.
        assert_eq!(makespan_lower_bound(&[], 2), 0.0);
    }

    #[test]
    fn single_worker_lpt_hits_the_exact_bound() {
        // With m = 1 the Graham bound degenerates to LPT = OPT = Σw.
        let w = [0.5, 9.0, 2.25, 4.0, 1.125];
        let total: f64 = w.iter().sum();
        assert_eq!(lpt_makespan(&w, 1), total);
        assert_eq!(makespan_lower_bound(&w, 1), total);
    }

    #[test]
    fn heap_and_naive_agree_on_known_inputs() {
        let w = [7.0, 7.0, 6.0, 6.0, 5.0, 4.0, 4.0, 4.0, 3.0];
        let order = lpt_order(&w);
        for m in 1..=5 {
            assert_eq!(
                list_schedule_makespan(&w, &order, m),
                list_schedule_makespan_naive(&w, &order, m),
                "m={m}"
            );
        }
    }

    #[test]
    fn single_worker_makespan_is_total() {
        let w = [2.0, 3.0, 4.0];
        assert!((lpt_makespan(&w, 1) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn classic_lpt_example() {
        // Weights 7,7,6,6,5,4,4,4,3 on 3 machines: LPT gives 16 (OPT 15.33 LB).
        let w = [7.0, 7.0, 6.0, 6.0, 5.0, 4.0, 4.0, 4.0, 3.0];
        let ms = lpt_makespan(&w, 3);
        assert!(ms <= 17.0, "LPT makespan {ms}");
        assert!(ms >= makespan_lower_bound(&w, 3));
    }

    #[test]
    fn lpt_beats_or_matches_fifo_here() {
        // Adversarial FIFO order: big task last forces imbalance.
        let w = [1.0, 1.0, 1.0, 9.0];
        let fifo = list_schedule_makespan(&w, &[0, 1, 2, 3], 2);
        let lpt = lpt_makespan(&w, 2);
        assert!(lpt <= fifo);
        assert!((lpt - 9.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_dominated_by_largest_task() {
        let w = [10.0, 1.0, 1.0];
        assert!((makespan_lower_bound(&w, 4) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn graham_bound_holds_on_random_inputs() {
        // LPT ≤ (4/3 − 1/(3m))·OPT ≤ (4/3)·LB is implied; check vs LB.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX) * 10.0 + 0.01
        };
        for m in 1..=8usize {
            let w: Vec<f64> = (0..23).map(|_| next()).collect();
            let ms = lpt_makespan(&w, m);
            let lb = makespan_lower_bound(&w, m);
            assert!(
                ms <= (4.0 / 3.0) * lb + 1e-9,
                "m={m}: LPT {ms} vs 4/3·LB {}",
                (4.0 / 3.0) * lb
            );
        }
    }
}
