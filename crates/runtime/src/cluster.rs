//! Cluster topology and admission-control types for multi-node execution.
//!
//! Eq. (4) of the paper models a cluster of `s` machines with `t` threads
//! each. The sharded execution backend (in `pmcmc-parallel`) simulates
//! that cluster in-process: `s` node structs, each owning a private
//! [`WorkerPool`](crate::WorkerPool) of `t` workers. The *shape* of such a
//! cluster — [`ClusterTopology`] — and the per-node back-pressure
//! primitive — [`Admission`], a counting semaphore bounding how many jobs
//! a node accepts concurrently — live here so any backend (or test) can
//! reuse them without depending on the job layer.

use std::fmt;
use std::sync::{Condvar, Mutex, PoisonError};

/// Identifier of one node ("machine") in a simulated cluster; node ids are
/// dense indices `0..s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// The `s × t` shape of a simulated cluster (eq. (4)'s symbols): `s` nodes
/// with `t` worker threads each, plus the per-node admission bound that
/// back-pressures submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTopology {
    nodes: usize,
    threads_per_node: usize,
    max_in_flight: usize,
}

impl ClusterTopology {
    /// A topology of `nodes` machines (`s`) with `threads_per_node`
    /// workers each (`t`), admitting at most 2 jobs per node by default
    /// (see [`ClusterTopology::max_in_flight`]).
    #[must_use]
    pub fn new(nodes: usize, threads_per_node: usize) -> Self {
        Self {
            nodes,
            threads_per_node,
            max_in_flight: 2,
        }
    }

    /// Sets the per-node admission bound: how many jobs one node will hold
    /// in flight (queued on a driver or running) before further
    /// submissions to it block.
    #[must_use]
    pub fn max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Number of nodes (`s`).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Worker threads per node (`t`).
    #[must_use]
    pub fn threads_per_node(&self) -> usize {
        self.threads_per_node
    }

    /// Per-node admission bound.
    #[must_use]
    pub fn max_in_flight_per_node(&self) -> usize {
        self.max_in_flight
    }

    /// Total worker threads across the cluster (`s · t`).
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.nodes * self.threads_per_node
    }

    /// Checks the topology for degenerate shapes.
    ///
    /// # Errors
    /// A human-readable message when any dimension is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least 1 node".to_owned());
        }
        if self.threads_per_node == 0 {
            return Err("cluster nodes must have at least 1 worker thread".to_owned());
        }
        if self.max_in_flight == 0 {
            return Err("per-node admission bound must be at least 1".to_owned());
        }
        Ok(())
    }
}

impl fmt::Display for ClusterTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} cluster (≤{} in flight/node)",
            self.nodes, self.threads_per_node, self.max_in_flight
        )
    }
}

/// A counting semaphore bounding how many jobs a node holds in flight.
///
/// [`Admission::acquire`] blocks the submitting thread while the node is
/// saturated — this is the back-pressure that fixes the job layer's
/// documented "submission itself does not throttle" gap. Built on
/// `std::sync::{Mutex, Condvar}` (the `parking_lot` stub has no condvar).
#[derive(Debug)]
pub struct Admission {
    limit: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    /// A semaphore admitting at most `limit` concurrent holders.
    ///
    /// # Panics
    /// Panics when `limit` is zero (nothing could ever be admitted).
    #[must_use]
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 1, "admission limit must be at least 1");
        Self {
            limit,
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Holders currently admitted.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        *self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires one slot, blocking while the node is saturated.
    pub fn acquire(&self) {
        let mut n = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *n >= self.limit {
            n = self.freed.wait(n).unwrap_or_else(PoisonError::into_inner);
        }
        *n += 1;
    }

    /// Acquires one slot, giving up after `timeout`; returns whether the
    /// slot was acquired. Placement loops that must re-check node
    /// liveness (a node can die while its admission is saturated) use
    /// this instead of [`Admission::acquire`] so they never block
    /// forever on a semaphore nothing will ever release.
    #[must_use]
    pub fn acquire_timeout(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut n = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *n >= self.limit {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _timed_out) = self
                .freed
                .wait_timeout(n, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            n = guard;
        }
        *n += 1;
        true
    }

    /// Acquires one slot only if one is free right now.
    #[must_use]
    pub fn try_acquire(&self) -> bool {
        let mut n = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if *n >= self.limit {
            return false;
        }
        *n += 1;
        true
    }

    /// Releases one slot, waking one blocked submitter.
    ///
    /// # Panics
    /// Panics on release without a matching acquire.
    pub fn release(&self) {
        let mut n = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        assert!(*n > 0, "release without matching acquire");
        *n -= 1;
        drop(n);
        self.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn topology_accessors_and_validation() {
        let t = ClusterTopology::new(3, 4).max_in_flight(2);
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.threads_per_node(), 4);
        assert_eq!(t.max_in_flight_per_node(), 2);
        assert_eq!(t.total_threads(), 12);
        assert!(t.validate().is_ok());
        assert!(ClusterTopology::new(0, 4).validate().is_err());
        assert!(ClusterTopology::new(2, 0).validate().is_err());
        assert!(ClusterTopology::new(2, 2)
            .max_in_flight(0)
            .validate()
            .is_err());
        assert_eq!(t.to_string(), "3x4 cluster (≤2 in flight/node)");
        assert_eq!(NodeId(5).to_string(), "node-5");
        assert_eq!(NodeId(5).index(), 5);
    }

    #[test]
    fn admission_try_acquire_respects_limit() {
        let a = Admission::new(2);
        assert!(a.try_acquire());
        assert!(a.try_acquire());
        assert!(!a.try_acquire());
        assert_eq!(a.in_flight(), 2);
        a.release();
        assert!(a.try_acquire());
        assert_eq!(a.limit(), 2);
    }

    #[test]
    fn admission_acquire_blocks_until_release() {
        let a = Arc::new(Admission::new(1));
        a.acquire();
        let admitted = Arc::new(AtomicUsize::new(0));
        let (a2, adm2) = (Arc::clone(&a), Arc::clone(&admitted));
        let waiter = std::thread::spawn(move || {
            a2.acquire();
            adm2.store(1, Ordering::SeqCst);
            a2.release();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            admitted.load(Ordering::SeqCst),
            0,
            "acquire did not block on a saturated node"
        );
        a.release();
        waiter.join().expect("waiter thread");
        assert_eq!(admitted.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn unbalanced_release_panics() {
        Admission::new(1).release();
    }

    #[test]
    fn acquire_timeout_gives_up_and_succeeds() {
        let a = Arc::new(Admission::new(1));
        assert!(a.acquire_timeout(Duration::from_millis(10)), "free slot");
        // Saturated: times out without acquiring.
        let t0 = std::time::Instant::now();
        assert!(!a.acquire_timeout(Duration::from_millis(40)));
        assert!(t0.elapsed() >= Duration::from_millis(35));
        assert_eq!(a.in_flight(), 1);
        // A release while a waiter is parked lets it through.
        let a2 = Arc::clone(&a);
        let waiter = std::thread::spawn(move || a2.acquire_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        a.release();
        assert!(waiter.join().expect("waiter thread"));
        assert_eq!(a.in_flight(), 1);
    }
}
