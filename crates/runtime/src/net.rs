//! Framed socket transport for the distributed backend: a thin,
//! blocking wrapper gluing [`crate::wire`] frames onto `std::net`
//! TCP streams.
//!
//! One [`FrameConn`] is one direction-agnostic framed stream. The
//! distributed coordinator clones a connection per node (one clone for
//! its reader thread, one behind a mutex for senders) via
//! [`FrameConn::try_clone`]; [`FrameConn::shutdown`] unblocks a reader
//! parked in `recv` from another thread — the mechanism the
//! heartbeat-timeout monitor uses to retire an unresponsive node.

use crate::wire::{read_frame, write_frame, Frame, FrameKind, WireError};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A framed, blocking TCP connection.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
}

impl FrameConn {
    /// Connects to `addr` with `TCP_NODELAY` set (frames are small and
    /// latency-sensitive; Nagle batching would delay heartbeats).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connects, retrying for up to `timeout` — daemons and coordinators
    /// race at startup, so first contact tolerates a listener that is not
    /// up yet.
    ///
    /// # Errors
    /// The last connection failure once `timeout` elapses.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(conn) => return Ok(conn),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Wraps an accepted stream, setting `TCP_NODELAY`.
    ///
    /// # Errors
    /// Propagates socket-option failures.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// The peer's address.
    ///
    /// # Errors
    /// Propagates socket failures (e.g. an already-closed stream).
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// A second handle to the same socket (shared read/write positions;
    /// used to split one connection between a reader thread and senders).
    ///
    /// # Errors
    /// Propagates `dup` failures.
    pub fn try_clone(&self) -> std::io::Result<Self> {
        Ok(Self {
            stream: self.stream.try_clone()?,
        })
    }

    /// Sends one frame.
    ///
    /// # Errors
    /// [`WireError::Io`] when the peer is gone mid-write.
    pub fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.stream, kind, payload)
    }

    /// Receives one frame, blocking until a full frame or a transport
    /// error arrives.
    ///
    /// # Errors
    /// [`WireError::Io`] on disconnect, plus the protocol violations
    /// documented on [`read_frame`].
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        read_frame(&mut self.stream)
    }

    /// Half-closes both directions, failing any blocked `recv`/`send` on
    /// other clones of this connection. Idempotent in effect: repeated
    /// shutdowns of an already-dead socket only return an error, which
    /// callers retiring a node ignore.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn shutdown(&self) -> std::io::Result<()> {
        self.stream.shutdown(Shutdown::Both)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Hello, Wire, WIRE_VERSION};
    use std::net::TcpListener;

    #[test]
    fn frames_cross_a_loopback_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut conn = FrameConn::from_stream(stream).expect("wrap");
            let frame = conn.recv().expect("recv hello");
            assert_eq!(frame.kind, FrameKind::Hello);
            let hello = Hello::from_wire_bytes(&frame.payload).expect("decode");
            conn.send(
                FrameKind::Hello,
                &Hello {
                    workers: 4,
                    ..hello
                }
                .to_wire_bytes(),
            )
            .expect("send reply");
        });

        let mut conn = FrameConn::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        conn.send(
            FrameKind::Hello,
            &Hello {
                version: WIRE_VERSION,
                node: 9,
                workers: 0,
            }
            .to_wire_bytes(),
        )
        .expect("send");
        let reply = conn.recv().expect("reply");
        let hello = Hello::from_wire_bytes(&reply.payload).expect("decode reply");
        assert_eq!(hello.node, 9);
        assert_eq!(hello.workers, 4);
        server.join().expect("server thread");
    }

    #[test]
    fn shutdown_unblocks_a_parked_reader() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            // Hold the connection open but silent.
            let (stream, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(300));
            drop(stream);
        });
        let conn = FrameConn::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        let mut reader = conn.try_clone().expect("clone");
        let parked = std::thread::spawn(move || reader.recv());
        std::thread::sleep(Duration::from_millis(50));
        conn.shutdown().expect("shutdown");
        let result = parked.join().expect("reader thread");
        assert!(result.is_err(), "recv on a shut-down socket must fail");
        server.join().expect("server thread");
    }
}
