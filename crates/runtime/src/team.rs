//! A low-latency broadcast team for speculative move rounds.
//!
//! Speculative moves ([11], §IV) evaluate `n` independent proposals of the
//! *same* chain state concurrently; a round lasts roughly one MCMC
//! iteration (microseconds), so channel-based dispatch would dominate the
//! round. `SpinTeam` keeps `n − 1` helper threads hot: each spins briefly
//! on a generation counter (the fast path between back-to-back rounds) and
//! then parks on a condvar, so an idle or oversubscribed team never burns
//! cores the leader needs — the failure mode that made speculative rounds
//! orders of magnitude slower than sequential on machines with fewer cores
//! than lanes. Broadcasting a closure costs one mutex store plus an atomic
//! increment (plus a `notify_all` when some helper is parked), keeping the
//! "negligible overhead" regime the paper's eq. (3)/(4) assume.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Spin-loop iterations a helper burns waiting for the next round before
/// yielding and then parking. Long enough to catch back-to-back rounds,
/// short enough that an idle helper is off the core within microseconds.
const HELPER_SPINS: u32 = 2_000;
/// `yield_now` calls a helper makes after spinning, before parking.
const HELPER_YIELDS: u32 = 16;
/// Spin-loop iterations the leader burns waiting for helpers before it
/// starts yielding (helpers may need the leader's core on small machines).
const LEADER_SPINS: u32 = 200;

/// Type-erased shared job: a reference to the round's closure.
struct SharedJob {
    /// Raw wide pointer to the caller's closure; valid strictly for the
    /// duration of one `broadcast` call (the leader does not return until
    /// every helper has finished executing it).
    ptr: *const (dyn Fn(usize) + Sync),
}
// SAFETY: the pointee is `Sync` (bound enforced in `broadcast`) and the
// leader guarantees it outlives all concurrent use.
unsafe impl Send for SharedJob {}

struct TeamShared {
    generation: AtomicU64,
    completed: AtomicU64,
    shutdown: AtomicBool,
    panicked: AtomicBool,
    job: Mutex<Option<SharedJob>>,
    /// Latest generation announced to parked helpers; guarded by a std
    /// mutex so the condvar wait can re-check it without missed wakeups.
    announced: std::sync::Mutex<u64>,
    wake: std::sync::Condvar,
    /// Nanoseconds the leader has spent waiting for helpers to finish
    /// rounds (drained by [`SpinTeam::take_spin_wait_ns`]).
    spin_wait_ns: AtomicU64,
}

impl TeamShared {
    /// Publishes `gen` to parked helpers and wakes them.
    fn announce(&self, gen: u64) {
        let mut announced = self.announced.lock().unwrap();
        *announced = gen;
        drop(announced);
        self.wake.notify_all();
    }
}

/// One cache-line-padded output cell per member for `broadcast_map`; each
/// member writes only its own cell, so no locks and no false sharing.
#[repr(align(64))]
struct MapSlot<R>(UnsafeCell<Option<R>>);

// SAFETY: members access disjoint slots (slot `id` only from member `id`),
// and `broadcast`'s completion barrier orders all writes before the
// collecting reads.
unsafe impl<R: Send> Sync for MapSlot<R> {}

/// A team of workers executing one closure per round, each with a distinct
/// member id in `0..members` (id 0 is the calling thread).
pub struct SpinTeam {
    shared: Arc<TeamShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    members: usize,
}

impl SpinTeam {
    /// Creates a team with `members` total members (≥ 1). `members − 1`
    /// helper threads are spawned; the calling thread acts as member 0
    /// during [`SpinTeam::broadcast`].
    #[must_use]
    pub fn new(members: usize) -> Self {
        let members = members.max(1);
        let shared = Arc::new(TeamShared {
            generation: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            job: Mutex::new(None),
            announced: std::sync::Mutex::new(0),
            wake: std::sync::Condvar::new(),
            spin_wait_ns: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(members - 1);
        for id in 1..members {
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pmcmc-spec-{id}"))
                    .spawn(move || helper_loop(&sh, id))
                    .expect("failed to spawn team helper"),
            );
        }
        Self {
            shared,
            handles,
            members,
        }
    }

    /// Total team size including the calling thread.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// How many members can actually run concurrently on this host:
    /// `min(members, logical cores)`. Callers use this to decide whether a
    /// broadcast round buys real parallelism or whether inline execution is
    /// cheaper (on a host with fewer cores than lanes every round is a
    /// forced context-switch relay).
    #[must_use]
    pub fn effective_parallelism(&self) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.members.min(cores)
    }

    /// Drains the accumulated leader spin-wait time (nanoseconds spent in
    /// `broadcast` waiting for helpers after the leader's own share was
    /// done). Resets the counter to zero.
    #[must_use]
    pub fn take_spin_wait_ns(&self) -> u64 {
        self.shared.spin_wait_ns.swap(0, Ordering::Relaxed)
    }

    /// Runs `f(member_id)` once on every member (ids `0..members`)
    /// concurrently and returns when all have finished. The closure may
    /// borrow caller state.
    ///
    /// # Panics
    /// Panics if any member's closure panicked.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.members == 1 {
            f(0);
            return;
        }
        let helpers = (self.members - 1) as u64;
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f_ref` to store it in the
        // shared slot. The leader waits below until `completed == helpers`,
        // i.e. until every helper has returned from the closure, before
        // clearing the slot and returning — so the reference never outlives
        // the closure it points to.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };
        *self.shared.job.lock() = Some(SharedJob { ptr: erased });
        self.shared.completed.store(0, Ordering::Release);
        let gen = self.shared.generation.fetch_add(1, Ordering::Release) + 1;
        self.shared.announce(gen);

        // Member 0 = the leader itself.
        let leader_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        if self.shared.completed.load(Ordering::Acquire) < helpers {
            let wait_start = std::time::Instant::now();
            let mut spins = 0u32;
            while self.shared.completed.load(Ordering::Acquire) < helpers {
                spins += 1;
                if spins < LEADER_SPINS {
                    std::hint::spin_loop();
                } else {
                    // Helpers may be queued behind us on a small machine —
                    // give up the core instead of starving them.
                    std::thread::yield_now();
                }
            }
            let waited = u64::try_from(wait_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.shared
                .spin_wait_ns
                .fetch_add(waited, Ordering::Relaxed);
        }
        *self.shared.job.lock() = None;

        if leader_result.is_err() || self.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("SpinTeam member panicked during broadcast");
        }
    }

    /// Broadcasts `f` and collects each member's return value, in member
    /// order.
    ///
    /// # Panics
    /// Panics if any member's closure panicked.
    pub fn broadcast_map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots: Vec<MapSlot<R>> = (0..self.members)
            .map(|_| MapSlot(UnsafeCell::new(None)))
            .collect();
        let slots_ref = &slots;
        self.broadcast(|id| {
            // SAFETY: member `id` is the only writer of slot `id`, and the
            // completion barrier in `broadcast` sequences these writes
            // before the reads below.
            unsafe {
                *slots_ref[id].0.get() = Some(f(id));
            }
        });
        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("member ran"))
            .collect()
    }
}

fn helper_loop(shared: &TeamShared, id: usize) {
    let mut last_gen = 0u64;
    loop {
        // Fast path: spin briefly in case the next round is imminent …
        let mut spins = 0u32;
        loop {
            if shared.generation.load(Ordering::Acquire) != last_gen {
                break;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < HELPER_SPINS {
                std::hint::spin_loop();
            } else if spins < HELPER_SPINS + HELPER_YIELDS {
                std::thread::yield_now();
            } else {
                // … then park until the leader announces a new round. The
                // announced generation is re-checked under the lock, so a
                // notify between the atomic check and the wait cannot be
                // missed.
                let mut announced = shared.announced.lock().unwrap();
                while *announced == last_gen && !shared.shutdown.load(Ordering::Acquire) {
                    announced = shared.wake.wait(announced).unwrap();
                }
                break;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        last_gen = shared.generation.load(Ordering::Acquire);
        let job_ptr = shared.job.lock().as_ref().map(|j| j.ptr);
        if let Some(ptr) = job_ptr {
            // SAFETY: the leader keeps the closure alive until `completed`
            // reaches the helper count; we increment only after returning.
            let run = catch_unwind(AssertUnwindSafe(|| unsafe { (*ptr)(id) }));
            if run.is_err() {
                shared.panicked.store(true, Ordering::Release);
            }
        }
        shared.completed.fetch_add(1, Ordering::AcqRel);
    }
}

impl Drop for SpinTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Take the announce lock so parked helpers observe the shutdown
        // flag when woken.
        drop(self.shared.announced.lock().unwrap());
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_member_runs_inline() {
        let team = SpinTeam::new(1);
        let hits = AtomicUsize::new(0);
        team.broadcast(|id| {
            assert_eq!(id, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn every_member_runs_once_per_round() {
        let team = SpinTeam::new(4);
        for _ in 0..50 {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            team.broadcast(|id| {
                hits[id].fetch_add(1, Ordering::SeqCst);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::SeqCst), 1);
            }
        }
    }

    #[test]
    fn broadcast_map_collects_in_member_order() {
        let team = SpinTeam::new(3);
        let out = team.broadcast_map(|id| id * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn members_can_borrow_caller_state() {
        let team = SpinTeam::new(3);
        let input = [5u64, 7, 9];
        let out = team.broadcast_map(|id| input[id] * 2);
        assert_eq!(out, vec![10, 14, 18]);
    }

    #[test]
    fn many_rounds_back_to_back() {
        let team = SpinTeam::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..1000 {
            team.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 2000);
    }

    #[test]
    fn rounds_resume_after_helpers_park() {
        let team = SpinTeam::new(3);
        for round in 0..5 {
            let total = AtomicUsize::new(0);
            team.broadcast(|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(total.load(Ordering::SeqCst), 3, "round {round}");
            // Long gap: helpers exhaust their spin budget and park; the
            // next broadcast must wake them.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    #[test]
    fn spin_wait_counter_drains() {
        let team = SpinTeam::new(2);
        for _ in 0..20 {
            team.broadcast(|id| {
                if id == 1 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        let waited = team.take_spin_wait_ns();
        assert!(waited > 0, "leader never waited on the sleeping helper");
        // Drained: immediately reading again returns ~0 (no rounds ran).
        assert_eq!(team.take_spin_wait_ns(), 0);
    }

    #[test]
    fn effective_parallelism_is_bounded() {
        let team = SpinTeam::new(64);
        let eff = team.effective_parallelism();
        assert!(eff >= 1);
        assert!(eff <= 64);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(eff, 64.min(cores));
        let solo = SpinTeam::new(1);
        assert_eq!(solo.effective_parallelism(), 1);
    }

    #[test]
    fn panic_in_member_propagates() {
        let team = SpinTeam::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            team.broadcast(|id| {
                if id == 1 {
                    panic!("helper boom");
                }
            });
        }));
        assert!(caught.is_err());
        // Team survives and is usable again.
        let out = team.broadcast_map(|id| id);
        assert_eq!(out, vec![0, 1]);
    }
}
