//! A low-latency broadcast team for speculative move rounds.
//!
//! Speculative moves ([11], §IV) evaluate `n` independent proposals of the
//! *same* chain state concurrently; a round lasts roughly one MCMC
//! iteration (microseconds), so channel-based dispatch would dominate the
//! round. `SpinTeam` keeps `n − 1` helper threads spinning on a generation
//! counter: broadcasting a closure costs one mutex store plus an atomic
//! increment, giving sub-microsecond fan-out on an SMP machine — the
//! "negligible overhead" regime the paper's eq. (3)/(4) assume.

use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Type-erased shared job: a reference to the round's closure.
struct SharedJob {
    /// Raw wide pointer to the caller's closure; valid strictly for the
    /// duration of one `broadcast` call (the leader does not return until
    /// every helper has finished executing it).
    ptr: *const (dyn Fn(usize) + Sync),
}
// SAFETY: the pointee is `Sync` (bound enforced in `broadcast`) and the
// leader guarantees it outlives all concurrent use.
unsafe impl Send for SharedJob {}

struct TeamShared {
    generation: AtomicU64,
    completed: AtomicU64,
    shutdown: AtomicBool,
    panicked: AtomicBool,
    job: Mutex<Option<SharedJob>>,
}

/// A team of spinning workers executing one closure per round, each with a
/// distinct member id in `0..members` (id 0 is the calling thread).
pub struct SpinTeam {
    shared: Arc<TeamShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    members: usize,
}

impl SpinTeam {
    /// Creates a team with `members` total members (≥ 1). `members − 1`
    /// helper threads are spawned; the calling thread acts as member 0
    /// during [`SpinTeam::broadcast`].
    #[must_use]
    pub fn new(members: usize) -> Self {
        let members = members.max(1);
        let shared = Arc::new(TeamShared {
            generation: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            job: Mutex::new(None),
        });
        let mut handles = Vec::with_capacity(members - 1);
        for id in 1..members {
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pmcmc-spec-{id}"))
                    .spawn(move || helper_loop(&sh, id))
                    .expect("failed to spawn team helper"),
            );
        }
        Self {
            shared,
            handles,
            members,
        }
    }

    /// Total team size including the calling thread.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// Runs `f(member_id)` once on every member (ids `0..members`)
    /// concurrently and returns when all have finished. The closure may
    /// borrow caller state.
    ///
    /// # Panics
    /// Panics if any member's closure panicked.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.members == 1 {
            f(0);
            return;
        }
        let helpers = (self.members - 1) as u64;
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f_ref` to store it in the
        // shared slot. The leader spins below until `completed == helpers`,
        // i.e. until every helper has returned from the closure, before
        // clearing the slot and returning — so the reference never outlives
        // the closure it points to.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };
        *self.shared.job.lock() = Some(SharedJob { ptr: erased });
        self.shared.completed.store(0, Ordering::Release);
        self.shared.generation.fetch_add(1, Ordering::Release);

        // Member 0 = the leader itself.
        let leader_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        while self.shared.completed.load(Ordering::Acquire) < helpers {
            std::hint::spin_loop();
        }
        *self.shared.job.lock() = None;

        if leader_result.is_err() || self.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("SpinTeam member panicked during broadcast");
        }
    }

    /// Broadcasts `f` and collects each member's return value, in member
    /// order.
    pub fn broadcast_map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..self.members).map(|_| Mutex::new(None)).collect();
        self.broadcast(|id| {
            *slots[id].lock() = Some(f(id));
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("member ran"))
            .collect()
    }
}

fn helper_loop(shared: &TeamShared, id: usize) {
    let mut last_gen = 0u64;
    let mut idle_spins = 0u32;
    loop {
        let gen = shared.generation.load(Ordering::Acquire);
        if gen == last_gen {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            idle_spins += 1;
            if idle_spins < 10_000 {
                std::hint::spin_loop();
            } else if idle_spins < 20_000 {
                std::thread::yield_now();
            } else {
                // Long idle: back off so an idle team doesn't burn a core.
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            continue;
        }
        idle_spins = 0;
        last_gen = gen;
        let job_ptr = shared.job.lock().as_ref().map(|j| j.ptr);
        if let Some(ptr) = job_ptr {
            // SAFETY: the leader keeps the closure alive until `completed`
            // reaches the helper count; we increment only after returning.
            let run = catch_unwind(AssertUnwindSafe(|| unsafe { (*ptr)(id) }));
            if run.is_err() {
                shared.panicked.store(true, Ordering::Release);
            }
        }
        shared.completed.fetch_add(1, Ordering::AcqRel);
    }
}

impl Drop for SpinTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_member_runs_inline() {
        let team = SpinTeam::new(1);
        let hits = AtomicUsize::new(0);
        team.broadcast(|id| {
            assert_eq!(id, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn every_member_runs_once_per_round() {
        let team = SpinTeam::new(4);
        for _ in 0..50 {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            team.broadcast(|id| {
                hits[id].fetch_add(1, Ordering::SeqCst);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::SeqCst), 1);
            }
        }
    }

    #[test]
    fn broadcast_map_collects_in_member_order() {
        let team = SpinTeam::new(3);
        let out = team.broadcast_map(|id| id * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn members_can_borrow_caller_state() {
        let team = SpinTeam::new(3);
        let input = [5u64, 7, 9];
        let out = team.broadcast_map(|id| input[id] * 2);
        assert_eq!(out, vec![10, 14, 18]);
    }

    #[test]
    fn many_rounds_back_to_back() {
        let team = SpinTeam::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..1000 {
            team.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 2000);
    }

    #[test]
    fn panic_in_member_propagates() {
        let team = SpinTeam::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            team.broadcast(|id| {
                if id == 1 {
                    panic!("helper boom");
                }
            });
        }));
        assert!(caught.is_err());
        // Team survives and is usable again.
        let out = team.broadcast_map(|id| id);
        assert_eq!(out, vec![0, 1]);
    }
}
