//! A persistent fixed-size worker pool with scoped, weighted task batches.
//!
//! The periodic-partitioning sampler runs one batch per local phase: one
//! task per partition, weighted by the partition's iteration budget. The
//! pool keeps its threads alive across phases so that per-phase overhead is
//! limited to queue traffic (the paper's "overhead required to duplicate,
//! arrange for parallel execution, and merge the partitions").
//!
//! Tasks may borrow from the caller's stack: [`WorkerPool::run_batch`]
//! blocks until every task in the batch has finished, which makes the
//! lifetime extension sound (same argument as `std::thread::scope`).

use crate::scheduler::lpt_order;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cumulative execution statistics for a pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total tasks executed.
    pub tasks: u64,
    /// Total busy nanoseconds summed over all workers.
    pub busy_nanos: u64,
    /// Number of batches run.
    pub batches: u64,
}

/// A fixed-size thread pool executing batches of borrowed tasks.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    tasks: Arc<AtomicU64>,
    busy_nanos: Arc<AtomicU64>,
    batches: AtomicU64,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (at least 1).
    ///
    /// # Panics
    /// When the OS refuses to spawn a worker thread. Long-running services
    /// (the node daemon) use [`WorkerPool::try_new`] / [`WorkerPool::try_shared`]
    /// and surface the failure as an `io::Error` instead.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        // Panic-audit allowlisted: local drivers have no recovery path for
        // a machine that cannot spawn threads at startup.
        Self::try_new(threads).expect("failed to spawn pool worker")
    }

    /// Spawns a pool with `threads` workers (at least 1), surfacing
    /// thread-spawn failure as an error instead of panicking. If any
    /// worker fails to spawn, the already-started workers are shut down
    /// cleanly before the error is returned.
    ///
    /// # Errors
    /// The `io::Error` from `std::thread::Builder::spawn`.
    pub fn try_new(threads: usize) -> std::io::Result<Self> {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let tasks = Arc::new(AtomicU64::new(0));
        let busy = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("pmcmc-worker-{i}"))
                .spawn(move || {
                    // Task/busy accounting happens inside the job itself
                    // (see `run_batch`), *before* the job's result is sent:
                    // accounting here, after `job()` returns, would race
                    // with the batch owner reading `stats()` right after
                    // `run_batch` unblocks.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                });
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Partially spawned: close the queue so the started
                    // workers exit, join them, then report the failure.
                    drop(sender);
                    drop(receiver);
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self {
            sender: Some(sender),
            handles,
            threads,
            tasks,
            busy_nanos: busy,
            batches: AtomicU64::new(0),
        })
    }

    /// Spawns a pool wrapped in an [`Arc`] — the shape the job engine
    /// shares one pool across concurrently running jobs. Batches from
    /// different threads interleave safely: each `run_batch` call collects
    /// results on its own private channel.
    ///
    /// # Panics
    /// As [`WorkerPool::new`]; see [`WorkerPool::try_shared`].
    #[must_use]
    pub fn shared(threads: usize) -> Arc<Self> {
        Arc::new(Self::new(threads))
    }

    /// Fallible variant of [`WorkerPool::shared`] for long-running
    /// services that must report startup failure over their control
    /// channel rather than die.
    ///
    /// # Errors
    /// The `io::Error` from `std::thread::Builder::spawn`.
    pub fn try_shared(threads: usize) -> std::io::Result<Arc<Self>> {
        Ok(Arc::new(Self::try_new(threads)?))
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.tasks.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of weighted tasks to completion and returns their
    /// results in task order. Tasks are submitted in LPT (descending
    /// weight) order so that greedy pickup by free workers approximates
    /// optimal load balancing when there are more tasks than threads.
    ///
    /// Tasks may borrow data from the caller: this function does not return
    /// until every task has run, so borrows cannot dangle.
    ///
    /// # Panics
    /// Re-raises the first panic raised by any task.
    pub fn run_batch<'env, R, F>(&self, tasks: Vec<(f64, F)>) -> Vec<R>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        self.batches.fetch_add(1, Ordering::Relaxed);

        let weights: Vec<f64> = tasks.iter().map(|(w, _)| *w).collect();
        let order = lpt_order(&weights);

        type TaskResult<R> = (usize, std::thread::Result<R>);
        let (result_tx, result_rx) = unbounded::<TaskResult<R>>();

        let mut slot_fns: Vec<Option<F>> = tasks.into_iter().map(|(_, f)| Some(f)).collect();
        let sender = self.sender.as_ref().expect("pool alive");

        for &i in &order {
            let f = slot_fns[i].take().expect("each task submitted once");
            let tx = result_tx.clone();
            let task_ctr = Arc::clone(&self.tasks);
            let busy_ctr = Arc::clone(&self.busy_nanos);
            // Build the job with its true (non-'static) lifetime first.
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(f));
                // Account before sending the result: once the batch owner
                // has collected every result, `stats()` must already
                // reflect the whole batch.
                busy_ctr.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                task_ctr.fetch_add(1, Ordering::Relaxed);
                // The batch owner blocks on the receiver, so it is alive.
                let _ = tx.send((i, outcome));
            });
            // SAFETY: `run_batch` blocks below until it has received one
            // result per task, and each result is sent only after its
            // task's closure has returned. All `'env` borrows captured by
            // `job` therefore strictly outlive the job's execution; the
            // queue never holds a job past that point. This is the same
            // soundness argument as `std::thread::scope`.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            sender.send(job).expect("pool workers alive");
        }
        drop(result_tx);

        let mut results: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, outcome) = result_rx.recv().expect("one result per task");
            results[i] = Some(outcome);
        }
        let mut first_panic = None;
        let mut out = Vec::with_capacity(n);
        for r in results {
            match r.expect("all slots filled") {
                Ok(v) => out.push(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        out
    }

    /// Convenience: maps `f` over `items` in parallel (unit weights) and
    /// returns outputs in input order.
    pub fn map<'env, T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(T) -> R + Sync + Send + 'env,
    {
        let fref = &f;
        self.run_batch(
            items
                .into_iter()
                .map(|item| (1.0, move || fref(item)))
                .collect(),
        )
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers after the queue drains.
        self.sender.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_batch_is_noop() {
        let pool = WorkerPool::new(2);
        let out: Vec<i32> = pool.run_batch(Vec::<(f64, fn() -> i32)>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn results_in_task_order_despite_lpt() {
        let pool = WorkerPool::new(3);
        // Weights deliberately unsorted; results must match input order.
        let tasks: Vec<(f64, Box<dyn FnOnce() -> usize + Send>)> = (0..10usize)
            .map(|i| {
                let w = ((i * 7 % 5) as f64) + 0.5;
                (
                    w,
                    Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>,
                )
            })
            .collect();
        let out = pool.run_batch(tasks);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(10).collect();
        let sums = pool.map(chunks, |c| c.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<(f64, _)> = (0..64)
            .map(|_| {
                let c = &counter;
                (1.0, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn more_tasks_than_threads() {
        let pool = WorkerPool::new(2);
        let out = pool.map((0..50).collect::<Vec<i64>>(), |i| i * 2);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_batches_reuse_pool() {
        let pool = WorkerPool::new(3);
        for round in 0..20 {
            let out = pool.map(vec![round; 5], |x: i32| x + 1);
            assert_eq!(out, vec![round + 1; 5]);
        }
        let stats = pool.stats();
        assert_eq!(stats.tasks, 100);
        assert_eq!(stats.batches, 20);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![
                (
                    1.0,
                    Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                ),
                (
                    1.0,
                    Box::new(|| -> usize { panic!("boom") }) as Box<dyn FnOnce() -> usize + Send>,
                ),
            ]);
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let out = pool.map(vec![1, 2, 3], |x: i32| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn busy_time_accumulates() {
        let pool = WorkerPool::new(2);
        pool.map(vec![(); 4], |()| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        assert!(pool.stats().busy_nanos >= 4 * 4_000_000);
    }

    #[test]
    fn concurrent_batches_from_multiple_threads_do_not_cross_talk() {
        // The job engine's usage pattern: several driver threads fan their
        // own batches onto one shared pool concurrently. Every batch must
        // get exactly its own results back, in its own task order.
        let pool = WorkerPool::shared(3);
        let mut drivers = Vec::new();
        for driver in 0..4u64 {
            let pool = Arc::clone(&pool);
            drivers.push(std::thread::spawn(move || {
                for round in 0..10u64 {
                    let base = driver * 1_000 + round * 100;
                    let items: Vec<u64> = (base..base + 20).collect();
                    let out = pool.map(items.clone(), |x| x * 2);
                    assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
                }
            }));
        }
        for d in drivers {
            d.join().expect("driver thread");
        }
        assert_eq!(pool.stats().tasks, 4 * 10 * 20);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = WorkerPool::new(1);
        let out = pool.map((0..10).collect::<Vec<i32>>(), |i| i - 1);
        assert_eq!(out, (-1..9).collect::<Vec<_>>());
    }
}
