//! The versioned, length-prefixed binary wire format for distributed
//! execution (and, eventually, checkpoint/resume — both need the same
//! serialisation story for jobs and reports).
//!
//! The build environment is offline (no serde), so the format is
//! hand-rolled over `std::io`: every message is one *frame*
//!
//! ```text
//! ┌──────┬─────────┬──────┬────────────┬─────────────┐
//! │ "PM" │ version │ kind │ len  (LE)  │   payload   │
//! │ 2 B  │   1 B   │ 1 B  │    4 B     │   len B     │
//! └──────┴─────────┴──────┴────────────┴─────────────┘
//! ```
//!
//! with all multi-byte integers little-endian and floats as IEEE-754 bit
//! patterns (so encode∘decode is the identity down to the bit — the
//! distributed backend relies on this for its local≡remote equivalence
//! guarantee). The header version byte is the compatibility gate:
//! [`read_frame`] rejects frames from a future version instead of
//! guessing at their layout. Payload schemas are written with
//! [`WireWriter`] and read with [`WireReader`] via the [`Wire`] trait;
//! impls for the cross-crate value types ([`GrayImage`], [`ModelParams`],
//! [`Circle`], …) live here, while the job-layer payloads (strategy
//! specs, reports) are encoded by `pmcmc-parallel` on top of the same
//! primitives.

use pmcmc_core::math::TruncatedNormal;
use pmcmc_core::{ModelParams, PerfSnapshot};
use pmcmc_imaging::{Circle, GrayImage};
use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

/// The current wire-format version, stamped into every frame header.
///
/// v2 extended [`PerfSnapshot`] with the span-kernel counters
/// (`span_fastpath_hits`, `pixels_skipped`); v3 appended the lane-kernel
/// and proposal-batch counters (`simd_lanes_processed`,
/// `proposal_batches`).
pub const WIRE_VERSION: u8 = 3;

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"PM";

/// Upper bound on one frame's payload length (a 4096×4096 f32 image is
/// 64 MiB; 256 MiB leaves generous headroom while rejecting nonsense
/// lengths from corrupt or hostile streams before allocating).
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// What a frame carries — the protocol's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Handshake, both directions: coordinator announces its version and
    /// the node id it assigns the connection; the daemon echoes its
    /// version and worker count back.
    Hello = 1,
    /// Periodic daemon→coordinator liveness beacon.
    Heartbeat = 2,
    /// Coordinator→daemon: one job to run.
    Assign = 3,
    /// Daemon→coordinator: one job's terminal outcome.
    Result = 4,
    /// Daemon→coordinator: a job it cannot take; reschedule it elsewhere.
    Requeue = 5,
    /// Coordinator→daemon: drain and exit.
    Shutdown = 6,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Hello),
            2 => Some(Self::Heartbeat),
            3 => Some(Self::Assign),
            4 => Some(Self::Result),
            5 => Some(Self::Requeue),
            6 => Some(Self::Shutdown),
            _ => None,
        }
    }
}

/// Everything that can go wrong encoding, decoding or transporting a
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// An underlying socket/stream error (message preserved; `io::Error`
    /// is not `Clone`).
    Io(String),
    /// The stream did not start with [`MAGIC`] — not a peer speaking this
    /// protocol.
    BadMagic([u8; 2]),
    /// The frame was written by a newer protocol version than this build
    /// understands.
    UnsupportedVersion(u8),
    /// The header's kind byte names no known [`FrameKind`].
    UnknownFrameKind(u8),
    /// A payload ended before the schema was fully read.
    Truncated,
    /// The payload decoded to structurally invalid data.
    Malformed(String),
    /// The header's length field exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "wire i/o error: {msg}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownFrameKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// One decoded frame: its kind and raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message vocabulary entry.
    pub kind: FrameKind,
    /// The schema bytes (decode with the matching payload type).
    pub payload: Vec<u8>,
}

/// Writes one version-[`WIRE_VERSION`] frame.
///
/// # Errors
/// [`WireError::FrameTooLarge`] for oversized payloads, [`WireError::Io`]
/// for transport failures.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut header = [0u8; 8];
    header[..2].copy_from_slice(&MAGIC);
    header[2] = WIRE_VERSION;
    header[3] = kind as u8;
    header[4..8].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing magic, version and the length cap.
///
/// # Errors
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] /
/// [`WireError::UnknownFrameKind`] / [`WireError::FrameTooLarge`] on
/// protocol violations, [`WireError::Io`] on transport failures.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    if header[..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    if header[2] > WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(header[2]));
    }
    let kind = FrameKind::from_u8(header[3]).ok_or(WireError::UnknownFrameKind(header[3]))?;
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { kind, payload })
}

/// Append-only payload builder (little-endian primitives).
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends an optional value: a presence byte, then the value.
    pub fn opt<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            Some(inner) => {
                self.bool(true);
                f(self, inner);
            }
            None => self.bool(false),
        }
    }

    /// Appends a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }
}

/// Cursor over a payload; every read is bounds-checked and returns
/// [`WireError::Truncated`] past the end.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting presence bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Malformed(format!("invalid utf-8 string: {e}")))
    }

    /// Reads an optional value written by [`WireWriter::opt`].
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed sequence written by [`WireWriter::seq`].
    ///
    /// The length prefix is sanity-bounded against the remaining payload
    /// (each element needs ≥ 1 byte) so a corrupt length cannot trigger a
    /// huge allocation.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Checks every payload byte was consumed — trailing garbage means
    /// the peer and this build disagree about the schema.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

/// A type with a wire schema: a deterministic byte encoding such that
/// `decode(encode(x)) == x` bit-for-bit.
pub trait Wire: Sized {
    /// Appends `self` to the payload.
    fn encode(&self, w: &mut WireWriter);

    /// Reads one value from the payload.
    ///
    /// # Errors
    /// [`WireError`] when the payload is truncated or malformed.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` as a standalone payload.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a standalone payload, requiring full consumption.
    ///
    /// # Errors
    /// [`WireError`] on truncated, malformed or over-long payloads.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

impl Wire for Duration {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.as_secs());
        w.u32(self.subsec_nanos());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let secs = r.u64()?;
        let nanos = r.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Malformed(format!(
                "duration subsec nanos {nanos} out of range"
            )));
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl Wire for GrayImage {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.width());
        w.u32(self.height());
        for &px in self.as_slice() {
            w.f32(px);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let width = r.u32()?;
        let height = r.u32()?;
        let n = (width as usize)
            .checked_mul(height as usize)
            .ok_or_else(|| WireError::Malformed("image dimensions overflow".to_owned()))?;
        if r.remaining() < n * 4 {
            return Err(WireError::Truncated);
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f32()?);
        }
        Ok(GrayImage::from_vec(width, height, data))
    }
}

impl Wire for TruncatedNormal {
    fn encode(&self, w: &mut WireWriter) {
        w.f64(self.mu);
        w.f64(self.sigma);
        w.f64(self.lo);
        w.f64(self.hi);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (mu, sigma, lo, hi) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
        // NaNs must fail here (not inside `new`'s asserts), so the
        // comparisons are spelled to catch them.
        if sigma.is_nan() || sigma <= 0.0 || hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(WireError::Malformed(format!(
                "invalid truncated normal: mu={mu}, sigma={sigma}, [{lo}, {hi}]"
            )));
        }
        // `new` deterministically recomputes the private cached ln-mass
        // from the four public fields, so the round trip is exact.
        Ok(TruncatedNormal::new(mu, sigma, lo, hi))
    }
}

impl Wire for ModelParams {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.width);
        w.u32(self.height);
        w.f64(self.expected_count);
        self.radius_prior.encode(w);
        w.f64(self.overlap_gamma);
        w.f64(self.fg);
        w.f64(self.bg);
        w.f64(self.noise_sd);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ModelParams {
            width: r.u32()?,
            height: r.u32()?,
            expected_count: r.f64()?,
            radius_prior: TruncatedNormal::decode(r)?,
            overlap_gamma: r.f64()?,
            fg: r.f64()?,
            bg: r.f64()?,
            noise_sd: r.f64()?,
        })
    }
}

impl Wire for Circle {
    fn encode(&self, w: &mut WireWriter) {
        w.f64(self.x);
        w.f64(self.y);
        w.f64(self.r);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Circle::new(r.f64()?, r.f64()?, r.f64()?))
    }
}

impl Wire for PerfSnapshot {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.proposals_evaluated);
        w.u64(self.pixels_visited);
        w.u64(self.pair_count_queries);
        w.u64(self.pair_cache_hits);
        w.u64(self.rng_refills);
        w.u64(self.spin_wait_ns);
        w.u64(self.spec_rounds);
        w.u64(self.span_fastpath_hits);
        w.u64(self.pixels_skipped);
        w.u64(self.simd_lanes_processed);
        w.u64(self.proposal_batches);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PerfSnapshot {
            proposals_evaluated: r.u64()?,
            pixels_visited: r.u64()?,
            pair_count_queries: r.u64()?,
            pair_cache_hits: r.u64()?,
            rng_refills: r.u64()?,
            spin_wait_ns: r.u64()?,
            spec_rounds: r.u64()?,
            span_fastpath_hits: r.u64()?,
            pixels_skipped: r.u64()?,
            simd_lanes_processed: r.u64()?,
            proposal_batches: r.u64()?,
        })
    }
}

/// The handshake payload (both directions; see [`FrameKind::Hello`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The sender's wire-format version (belt and braces: the frame
    /// header carries it too, but the handshake pins it explicitly).
    pub version: u8,
    /// Coordinator→daemon: the node id assigned to this connection.
    /// Daemon→coordinator: the id echoed back.
    pub node: u64,
    /// Daemon→coordinator: worker threads available. Coordinator→daemon:
    /// zero (unused).
    pub workers: u32,
}

impl Wire for Hello {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(self.version);
        w.u64(self.node);
        w.u32(self.workers);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Hello {
            version: r.u8()?,
            node: r.u64()?,
            workers: r.u32()?,
        })
    }
}

/// The liveness beacon payload (see [`FrameKind::Heartbeat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// The sending node's assigned id.
    pub node: u64,
    /// Jobs the daemon currently holds (diagnostics).
    pub in_flight: u32,
}

impl Wire for Heartbeat {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.node);
        w.u32(self.in_flight);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Heartbeat {
            node: r.u64()?,
            in_flight: r.u32()?,
        })
    }
}

/// The reschedule-request payload (see [`FrameKind::Requeue`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requeue {
    /// The refused job's id.
    pub job: u64,
    /// Why the daemon would not take it.
    pub reason: String,
}

impl Wire for Requeue {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.job);
        w.str(&self.reason);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Requeue {
            job: r.u64()?,
            reason: r.str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f32(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("héllo");
        w.opt(Some(&42u64), |w, v| w.u64(*v));
        w.opt(None::<&u64>, |w, v| w.u64(*v));
        w.seq(&[1u32, 2, 3], |w, v| w.u32(*v));
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(42));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u32()).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn reads_past_end_are_truncated_not_panics() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        let mut r = WireReader::new(&[]);
        assert_eq!(r.u8(), Err(WireError::Truncated));
        let mut r = WireReader::new(&[5, 0, 0, 0, b'a']);
        assert_eq!(r.str(), Err(WireError::Truncated));
    }

    #[test]
    fn corrupt_seq_length_is_rejected_before_allocation() {
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.seq(|r| r.u8()), Err(WireError::Truncated));
    }

    #[test]
    fn frames_round_trip() {
        let hello = Hello {
            version: WIRE_VERSION,
            node: 3,
            workers: 8,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Hello, &hello.to_wire_bytes()).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.kind, FrameKind::Hello);
        assert_eq!(Hello::from_wire_bytes(&frame.payload).unwrap(), hello);
    }

    #[test]
    fn future_version_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Heartbeat, &[]).unwrap();
        buf[2] = WIRE_VERSION + 1;
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::UnsupportedVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn bad_magic_and_kind_and_length_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Shutdown, &[]).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            read_frame(&mut bad_magic.as_slice()),
            Err(WireError::BadMagic([b'X', b'M']))
        );
        let mut bad_kind = buf.clone();
        bad_kind[3] = 99;
        assert_eq!(
            read_frame(&mut bad_kind.as_slice()),
            Err(WireError::UnknownFrameKind(99))
        );
        let mut bad_len = buf;
        bad_len[4..8].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut bad_len.as_slice()),
            Err(WireError::FrameTooLarge(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn value_types_round_trip_exactly() {
        let img = GrayImage::from_fn(5, 3, |x, y| (x * 10 + y) as f32 * 0.125 - 0.5);
        let back = GrayImage::from_wire_bytes(&img.to_wire_bytes()).unwrap();
        assert_eq!(back.width(), 5);
        assert_eq!(back.height(), 3);
        assert_eq!(
            back.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            img.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );

        let params = ModelParams::new(64, 48, 3.5, 7.25);
        assert_eq!(
            ModelParams::from_wire_bytes(&params.to_wire_bytes()).unwrap(),
            params
        );

        let c = Circle::new(1.5, -2.25, 3.0);
        assert_eq!(Circle::from_wire_bytes(&c.to_wire_bytes()).unwrap(), c);

        let d = Duration::new(12, 345_678_901);
        assert_eq!(Duration::from_wire_bytes(&d.to_wire_bytes()).unwrap(), d);

        let perf = PerfSnapshot {
            proposals_evaluated: 1,
            pixels_visited: 2,
            pair_count_queries: 3,
            pair_cache_hits: 4,
            rng_refills: 5,
            spin_wait_ns: 6,
            spec_rounds: 7,
            span_fastpath_hits: 8,
            pixels_skipped: 9,
            simd_lanes_processed: 10,
            proposal_batches: 11,
        };
        assert_eq!(
            PerfSnapshot::from_wire_bytes(&perf.to_wire_bytes()).unwrap(),
            perf
        );
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut bytes = Hello {
            version: 1,
            node: 0,
            workers: 1,
        }
        .to_wire_bytes();
        bytes.push(0xFF);
        assert!(matches!(
            Hello::from_wire_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn invalid_duration_and_bool_are_malformed() {
        let mut w = WireWriter::new();
        w.u64(1);
        w.u32(2_000_000_000);
        assert!(matches!(
            Duration::from_wire_bytes(&w.into_bytes()),
            Err(WireError::Malformed(_))
        ));
        let mut r = WireReader::new(&[7]);
        assert!(matches!(r.bool(), Err(WireError::Malformed(_))));
    }
}
