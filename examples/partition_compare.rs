//! Intelligent vs blind vs naive partitioning on a clumped "latex bead"
//! scene (the Fig. 3 / Fig. 4 setting), with visual panels.
//!
//! Writes `fig3_input.pgm`, `fig3_mask.pgm`, `fig3_partitions.ppm`
//! (intelligent partition corridors) and `fig4_blind.ppm` (blind grid,
//! overlap bands, merged detections).
//!
//! This example stays on the scheme-specific `run_intelligent`/`run_blind`
//! layers because it reads per-partition geometry the uniform report does
//! not carry; for service-style runs use the job API (see
//! `examples/strategy_sweep.rs`).
//!
//! Run with: `cargo run --release --example partition_compare`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).

use pmcmc::imaging::filter::threshold;
use pmcmc::imaging::io::{colors, save_mask_pgm, save_pgm, RgbImage};
use pmcmc::imaging::synth::generate_packed_clusters;
use pmcmc::prelude::*;

fn main() {
    // A clumped bead dish: three densely packed clusters (touching beads,
    // like the paper's latex beads) with empty corridors between.
    let spec = SceneSpec {
        width: 384,
        height: 384,
        radius_mean: 8.0,
        radius_sd: 0.4,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.04,
        ..SceneSpec::default()
    };
    let clusters = [
        ClusterSpec {
            cx: 70.0,
            cy: 80.0,
            n: 6,
            spread: 0.0,
        },
        ClusterSpec {
            cx: 265.0,
            cy: 150.0,
            n: 14,
            spread: 0.0,
        },
        ClusterSpec {
            cx: 95.0,
            cy: 320.0,
            n: 4,
            spread: 0.0,
        },
    ];
    let mut rng = Xoshiro256::new(314);
    let scene = generate_packed_clusters(&spec, &clusters, 1.12, &mut rng);
    let image = scene.render(&mut rng);
    let truth = &scene.circles;
    println!("scene: {} beads in 3 clusters", truth.len());

    let mut base = ModelParams::new(384, 384, truth.len() as f64, 8.0);
    // The beads' true radius range: keeps one over-sized circle from
    // explaining two touching beads.
    base.radius_prior = pmcmc::core::math::TruncatedNormal::new(
        spec.radius_mean,
        0.5,
        spec.radius_min,
        spec.radius_max,
    );
    let pool = WorkerPool::new(4);
    let chain = SubChainOptions {
        max_iters: if std::env::var_os("PMCMC_QUICK").is_some() {
            30_000
        } else {
            SubChainOptions::default().max_iters
        },
        ..SubChainOptions::default()
    };

    // --- Intelligent partitioning (Fig. 3).
    let partitioner = IntelligentPartitioner::default();
    let intel = pmcmc::parallel::run_intelligent(&image, &base, &partitioner, &chain, &pool, 1);
    let m_intel = match_circles(truth, &intel.merged, 5.0);
    println!(
        "intelligent: {} partitions, {} detected, F1 {:.2}, anomalies {}, total {:.2}s",
        intel.partitions.len(),
        intel.merged.len(),
        m_intel.f1(),
        m_intel.anomaly_count(),
        intel.total_time().as_secs_f64()
    );
    for (i, p) in intel.partitions.iter().enumerate() {
        println!(
            "  partition {}: area {} px², eq5 expects {:.1}, found {}, converged at {:?}, {:.2}s",
            (b'A' + i as u8) as char,
            p.rect.area(),
            p.expected_count,
            p.detected.len(),
            p.converged_at,
            p.runtime.as_secs_f64()
        );
    }

    // --- Blind partitioning (Fig. 4).
    let blind = pmcmc::parallel::run_blind(&image, &base, &BlindOptions::default(), &pool, 2);
    let m_blind = match_circles(truth, &blind.merged, 5.0);
    println!(
        "blind: 2x2 grid, {} detected ({} pairs merged, {} disputed), F1 {:.2}, anomalies {}, total {:.2}s",
        blind.merged.len(),
        blind.merged_pairs,
        blind.disputed,
        m_blind.f1(),
        m_blind.anomaly_count(),
        blind.total_time().as_secs_f64()
    );

    // --- Naive baseline.
    let naive = pmcmc::parallel::run_naive(&image, &base, &NaiveOptions::default(), &pool, 3);
    let m_naive = match_circles(truth, &naive.merged, 5.0);
    println!(
        "naive: {} detected, F1 {:.2}, anomalies {} (missed {}, spurious {}, duplicates {})",
        naive.merged.len(),
        m_naive.f1(),
        m_naive.anomaly_count(),
        m_naive.missed.len(),
        m_naive.spurious.len(),
        m_naive.duplicates.len()
    );

    // --- Visual panels.
    save_pgm(&image, "fig3_input.pgm").expect("write input");
    save_mask_pgm(&threshold(&image, 0.5), "fig3_mask.pgm").expect("write mask");

    let mut fig3 = RgbImage::from_gray(&image);
    for p in &intel.partitions {
        fig3.draw_rect(&p.rect, colors::BLUE);
    }
    for c in &intel.merged {
        fig3.draw_circle(c, colors::RED);
    }
    fig3.save_ppm("fig3_partitions.ppm").expect("write fig3");

    let mut fig4 = RgbImage::from_gray(&image);
    for p in &blind.partitions {
        fig4.draw_rect(&p.extended, colors::CYAN);
    }
    fig4.draw_dashed_line(192, true, colors::BLUE);
    fig4.draw_dashed_line(192, false, colors::BLUE);
    for c in &blind.merged {
        fig4.draw_circle(c, colors::RED);
    }
    fig4.save_ppm("fig4_blind.ppm").expect("write fig4");
    println!("wrote fig3_input.pgm, fig3_mask.pgm, fig3_partitions.ppm, fig4_blind.ppm");
}
