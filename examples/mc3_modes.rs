//! Metropolis-coupled MCMC (§IV related work): heated chains help the cold
//! chain escape local optima on an ambiguous scene — compared against a
//! single chain, both driven through the typed job API (`StrategySpec` →
//! `JobSpec` → `JobHandle`).
//!
//! The scene contains overlapping circle pairs — the paper's example of
//! MCMC "identifying similar but distinct solutions (is an artifact in a
//! blood sample one blood cell or two overlapping cells)".
//!
//! Run with: `cargo run --release --example mc3_modes`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).

use pmcmc::prelude::*;

fn main() {
    // Pairs of heavily overlapping circles: the posterior has competing
    // one-circle vs two-circle explanations per blob.
    let mut circles = Vec::new();
    for (cx, cy) in [(60.0, 60.0), (180.0, 70.0), (120.0, 180.0), (200.0, 200.0)] {
        circles.push(Circle::new(cx - 4.0, cy, 8.0));
        circles.push(Circle::new(cx + 4.0, cy, 8.0));
    }
    let scene = Scene {
        width: 256,
        height: 256,
        circles: circles.clone(),
        fg: 0.9,
        bg: 0.1,
        noise_sd: 0.06,
        edge_softness: 1.0,
    };
    let mut rng = Xoshiro256::new(8);
    let image = scene.render(&mut rng);

    let params = ModelParams::new(256, 256, 8.0, 8.0);
    let budget: u64 = if std::env::var_os("PMCMC_QUICK").is_some() {
        12_000
    } else {
        120_000
    };
    let n_chains = 4usize;
    let engine = Engine::new(n_chains).expect("worker count is positive");

    // Single cold chain: the full budget through the sequential strategy.
    let single = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, image.clone(), params.clone())
                .seed(21)
                .iterations(budget),
        )
        .expect("spec validates")
        .wait()
        .expect("sequential run completes");
    println!(
        "single chain:   log-posterior {:.1}, {} circles, acceptance {:.1}%",
        single.diagnostics.log_posterior,
        single.detected().len(),
        100.0 * single.diagnostics.acceptance_rate.unwrap_or(0.0)
    );

    // (MC)^3 with 4 chains sharing the same *total* budget: each chain
    // gets budget / n_chains iterations, segments fan out on the pool.
    // The spec round-trips through its CLI spelling.
    let mc3_spec: StrategySpec = format!(
        "mc3:chains={n_chains},segment={}",
        budget / (n_chains as u64 * 60)
    )
    .parse()
    .expect("valid spelling");
    let coupled = engine
        .submit(
            JobSpec::new(mc3_spec, image, params)
                .seed(21)
                .iterations(budget / n_chains as u64),
        )
        .expect("spec validates")
        .wait()
        .expect("(MC)^3 run completes");
    println!(
        "(MC)^3 cold:    log-posterior {:.1}, {} circles, {}",
        coupled.diagnostics.log_posterior,
        coupled.detected().len(),
        coupled
            .diagnostics
            .notes
            .first()
            .map_or("no swaps attempted", String::as_str)
    );

    let m_single = match_circles(&circles, single.detected(), 5.0);
    let m_mc3 = match_circles(&circles, coupled.detected(), 5.0);
    println!(
        "F1 vs truth: single {:.2}, (MC)^3 {:.2} (truth has {} circles in {} blobs)",
        m_single.f1(),
        m_mc3.f1(),
        circles.len(),
        circles.len() / 2
    );
}
