//! Metropolis-coupled MCMC (§IV related work): heated chains help the cold
//! chain escape local optima on an ambiguous scene — compared against a
//! single chain through the unified `Strategy` engine.
//!
//! The scene contains overlapping circle pairs — the paper's example of
//! MCMC "identifying similar but distinct solutions (is an artifact in a
//! blood sample one blood cell or two overlapping cells)".
//!
//! Run with: `cargo run --release --example mc3_modes`

use pmcmc::prelude::*;

fn main() {
    // Pairs of heavily overlapping circles: the posterior has competing
    // one-circle vs two-circle explanations per blob.
    let mut circles = Vec::new();
    for (cx, cy) in [(60.0, 60.0), (180.0, 70.0), (120.0, 180.0), (200.0, 200.0)] {
        circles.push(Circle::new(cx - 4.0, cy, 8.0));
        circles.push(Circle::new(cx + 4.0, cy, 8.0));
    }
    let scene = Scene {
        width: 256,
        height: 256,
        circles: circles.clone(),
        fg: 0.9,
        bg: 0.1,
        noise_sd: 0.06,
        edge_softness: 1.0,
    };
    let mut rng = Xoshiro256::new(8);
    let image = scene.render(&mut rng);

    let params = ModelParams::new(256, 256, 8.0, 8.0);
    let budget = 120_000u64;
    let n_chains = 4usize;
    let pool = WorkerPool::new(n_chains);

    // Single cold chain: the full budget through the sequential strategy.
    let seq_req = RunRequest::new(&image, &params, &pool, 21).iterations(budget);
    let single = by_name("sequential").unwrap().run(&seq_req);
    println!(
        "single chain:   log-posterior {:.1}, {} circles, acceptance {:.1}%",
        single.diagnostics.log_posterior,
        single.detected().len(),
        100.0 * single.diagnostics.acceptance_rate.unwrap_or(0.0)
    );

    // (MC)^3 with 4 chains sharing the same *total* budget: each chain
    // gets budget / n_chains iterations, segments fan out on the pool.
    let mc3 = Mc3Strategy {
        chains: n_chains,
        heat: 0.4,
        segment_len: budget / (n_chains as u64 * 60),
    };
    let mc3_req = RunRequest::new(&image, &params, &pool, 21).iterations(budget / n_chains as u64);
    let coupled = mc3.run(&mc3_req);
    println!(
        "(MC)^3 cold:    log-posterior {:.1}, {} circles, {}",
        coupled.diagnostics.log_posterior,
        coupled.detected().len(),
        coupled
            .diagnostics
            .notes
            .first()
            .map_or("no swaps attempted", String::as_str)
    );

    let m_single = match_circles(&circles, single.detected(), 5.0);
    let m_mc3 = match_circles(&circles, coupled.detected(), 5.0);
    println!(
        "F1 vs truth: single {:.2}, (MC)^3 {:.2} (truth has {} circles in {} blobs)",
        m_single.f1(),
        m_mc3.f1(),
        circles.len(),
        circles.len() / 2
    );
}
