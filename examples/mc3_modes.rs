//! Metropolis-coupled MCMC (§IV related work): heated chains help the cold
//! chain escape local optima on an ambiguous scene.
//!
//! The scene contains overlapping circle pairs — the paper's example of
//! MCMC "identifying similar but distinct solutions (is an artifact in a
//! blood sample one blood cell or two overlapping cells)".
//!
//! Run with: `cargo run --release --example mc3_modes`

use pmcmc::prelude::*;

fn main() {
    // Pairs of heavily overlapping circles: the posterior has competing
    // one-circle vs two-circle explanations per blob.
    let mut circles = Vec::new();
    for (cx, cy) in [(60.0, 60.0), (180.0, 70.0), (120.0, 180.0), (200.0, 200.0)] {
        circles.push(Circle::new(cx - 4.0, cy, 8.0));
        circles.push(Circle::new(cx + 4.0, cy, 8.0));
    }
    let scene = Scene {
        width: 256,
        height: 256,
        circles: circles.clone(),
        fg: 0.9,
        bg: 0.1,
        noise_sd: 0.06,
        edge_softness: 1.0,
    };
    let mut rng = Xoshiro256::new(8);
    let image = scene.render(&mut rng);

    let params = ModelParams::new(256, 256, 8.0, 8.0);
    let model = NucleiModel::new(&image, params);
    let budget = 120_000u64;

    // Single cold chain.
    let mut single = Sampler::new(&model, 21);
    single.run(budget);
    println!(
        "single chain:   log-posterior {:.1}, {} circles, acceptance {:.1}%",
        single.log_posterior(),
        single.config.len(),
        100.0 * single.stats.acceptance_rate()
    );

    // (MC)^3 with 4 chains sharing the same total budget.
    let n_chains = 4;
    let segments = 60;
    let seg_len = budget / (n_chains as u64 * segments);
    let mut mc3 = Mc3::new(&model, n_chains, 0.4, 21);
    mc3.run(segments, seg_len);
    println!(
        "(MC)^3 cold:    log-posterior {:.1}, {} circles, swaps {}/{} accepted",
        mc3.cold().log_posterior(),
        mc3.cold().config.len(),
        mc3.swap_stats.accepted,
        mc3.swap_stats.attempted
    );

    let m_single = match_circles(&circles, single.config.circles(), 5.0);
    let m_mc3 = match_circles(&circles, mc3.cold().config.circles(), 5.0);
    println!(
        "F1 vs truth: single {:.2}, (MC)^3 {:.2} (truth has {} circles in {} blobs)",
        m_single.f1(),
        m_mc3.f1(),
        circles.len(),
        circles.len() / 2
    );
}
