//! Sweep every registered parallelisation strategy through the unified
//! engine on one shared scene, and print the comparison table the paper
//! is about: detection quality, runtime, phase breakdown and statistical
//! validity, side by side.
//!
//! Run with: `cargo run --release --example strategy_sweep [iters]`

use pmcmc::prelude::*;

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);

    // The shared workload: 12 cells on 192², moderate noise (the same
    // scene the integration tests sweep).
    let spec = SceneSpec {
        width: 192,
        height: 192,
        n_circles: 12,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(2024);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    let truth = &scene.circles;
    let mut params = ModelParams::new(192, 192, truth.len() as f64, 8.0);
    params.noise_sd = 0.15;

    // One request shared by every strategy: same image, same parameters,
    // same worker pool, same seed, same iteration budget.
    let pool = WorkerPool::new(4);
    let req = RunRequest::new(&image, &params, &pool, 7).iterations(iters);

    println!(
        "scene: {} planted circles on {}x{}; budget {} iterations; pool of {} workers",
        truth.len(),
        spec.width,
        spec.height,
        iters,
        pool.threads()
    );
    println!();
    println!(
        "{:<12} {:>9} {:>7} {:>7} {:>9} {:>6} {:>11}  phases",
        "strategy", "validity", "found", "F1", "time", "parts", "logpost"
    );
    println!("{}", "-".repeat(88));

    for strategy in registry() {
        let report = strategy.run(&req);
        let m = match_circles(truth, report.detected(), 5.0);
        let phases: Vec<String> = report
            .phases
            .iter()
            .map(|p| format!("{}={:.2}s", p.phase, p.duration.as_secs_f64()))
            .collect();
        println!(
            "{:<12} {:>9} {:>7} {:>7.2} {:>8.2}s {:>6} {:>11.1}  {}",
            report.strategy,
            report.validity.label(),
            report.detected().len(),
            m.f1(),
            report.total_time.as_secs_f64(),
            report.diagnostics.partitions,
            report.diagnostics.log_posterior,
            phases.join(" ")
        );
    }

    println!();
    println!(
        "note: 'naive' is the paper's anti-baseline — its anomalies (duplicate/missed \
         boundary artifacts) are the motivation for every other row."
    );
}
