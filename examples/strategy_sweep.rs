//! Sweep every registered parallelisation strategy through the job API on
//! one shared scene, with live progress events, and print the comparison
//! table the paper is about: detection quality, runtime, phase breakdown
//! and statistical validity, side by side.
//!
//! Each scheme becomes one `JobSpec` submitted onto a shared `Engine`;
//! the returned `JobHandle` streams `Event`s (phases, progress,
//! convergence, checkpoints) while the job runs, then resolves to the
//! uniform `RunReport`.
//!
//! Run with: `cargo run --release --example strategy_sweep [iters]`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).

use pmcmc::prelude::*;

fn main() {
    let default_iters: u64 = if std::env::var_os("PMCMC_QUICK").is_some() {
        6_000
    } else {
        60_000
    };
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_iters);

    // The shared workload: 12 cells on 192², moderate noise (the same
    // scene the integration tests sweep).
    let spec = SceneSpec {
        width: 192,
        height: 192,
        n_circles: 12,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(2024);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    let truth = &scene.circles;
    let mut params = ModelParams::new(192, 192, truth.len() as f64, 8.0);
    params.noise_sd = 0.15;

    // One engine shared by every job: same pool, same seed, same budget.
    let engine = Engine::new(4).expect("worker count is positive");

    println!(
        "scene: {} planted circles on {}x{}; budget {} iterations; pool of {} workers",
        truth.len(),
        spec.width,
        spec.height,
        iters,
        engine.pool().threads()
    );
    println!();
    println!(
        "{:<12} {:>9} {:>7} {:>7} {:>9} {:>6} {:>11}  phases",
        "strategy", "validity", "found", "F1", "time", "parts", "logpost"
    );
    println!("{}", "-".repeat(88));

    for strategy in StrategySpec::all() {
        let name = strategy.name();
        let job = JobSpec::new(strategy, image.clone(), params.clone())
            .seed(7)
            .iterations(iters)
            .progress_stride(iters / 4)
            .checkpoint_interval(iters / 2);
        let handle = engine.submit(job).expect("job spec is valid");

        // Stream the job's events live while it runs; the channel
        // disconnects when the job finishes.
        while let Ok(event) = handle.events().recv() {
            match event {
                Event::PhaseStarted { phase } => eprintln!("  [{name}] phase {phase}"),
                Event::Progress { done, total } => {
                    eprintln!("  [{name}] {done}/{total}");
                }
                Event::Converged { at } => eprintln!("  [{name}] converged at {at}"),
                Event::Checkpoint {
                    iterations,
                    circles,
                    log_posterior,
                } => eprintln!(
                    "  [{name}] checkpoint @{iterations}: {circles} circles, logpost {log_posterior:.1}"
                ),
            }
        }

        let report = handle.wait().expect("sweep jobs run to completion");
        let m = match_circles(truth, report.detected(), 5.0);
        let phases: Vec<String> = report
            .phases
            .iter()
            .map(|p| format!("{}={:.2}s", p.phase, p.duration.as_secs_f64()))
            .collect();
        println!(
            "{:<12} {:>9} {:>7} {:>7.2} {:>8.2}s {:>6} {:>11.1}  {}",
            report.strategy,
            report.validity.label(),
            report.detected().len(),
            m.f1(),
            report.total_time.as_secs_f64(),
            report.diagnostics.partitions,
            report.diagnostics.log_posterior,
            phases.join(" ")
        );
    }

    println!();
    println!(
        "note: 'naive' is the paper's anti-baseline — its anomalies (duplicate/missed \
         boundary artifacts) are the motivation for every other row."
    );
}
