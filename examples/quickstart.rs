//! Quickstart: detect circles in a synthetic cell image through the typed
//! job API — build a `JobSpec`, submit it onto a shared `Engine`, watch
//! the run through its `JobHandle` (events, cancellation, structured
//! errors), then score the report against ground truth.
//!
//! Run with: `cargo run --release --example quickstart`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).

use pmcmc::prelude::*;
use std::time::Duration;

fn main() {
    let budget: u64 = if std::env::var_os("PMCMC_QUICK").is_some() {
        8_000
    } else {
        80_000
    };

    // 1. A synthetic "stained nuclei" scene: 20 cells of mean radius 9 on a
    //    256x256 image, with noise.
    let spec = SceneSpec {
        width: 256,
        height: 256,
        n_circles: 20,
        radius_mean: 9.0,
        radius_sd: 1.0,
        radius_min: 5.0,
        radius_max: 14.0,
        noise_sd: 0.06,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(2024);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    println!("planted {} circles", scene.circles.len());

    // 2. One engine = one shared worker pool; every job submitted to it
    //    fans its parallel stages onto the same workers.
    let engine = Engine::new(4).expect("worker count is positive");
    let params = ModelParams::new(256, 256, 20.0, 9.0);

    // 3. Describe the work as a typed JobSpec. Strategies are typed specs
    //    too — parse one from its CLI spelling, options included.
    let strategy: StrategySpec = "periodic:global=128".parse().expect("valid spelling");
    let job = JobSpec::new(strategy, image.clone(), params.clone())
        .seed(1)
        .iterations(budget)
        .checkpoint_interval(budget / 4)
        .deadline(Duration::from_secs(600));
    let handle = engine.submit(job).expect("spec validates");
    println!("submitted {} as {}", handle.strategy(), handle.id());

    // 4. Observe the run live: the handle streams phase/progress/checkpoint
    //    events until the job finishes.
    while let Ok(event) = handle.events().recv() {
        if let Event::Checkpoint {
            iterations,
            circles,
            log_posterior,
        } = event
        {
            println!(
                "  checkpoint @{iterations}: {circles} circles, log-posterior {log_posterior:.1}"
            );
        }
    }
    let report = handle.wait().expect("run completed");
    println!(
        "{} ({}) ran {} iterations in {:.2}s (acceptance {:.1}%)",
        report.strategy,
        report.validity.label(),
        report.iterations,
        report.total_time.as_secs_f64(),
        100.0 * report.diagnostics.acceptance_rate.unwrap_or(0.0)
    );

    // 5. Score the detections.
    let result = match_circles(&scene.circles, report.detected(), 5.0);
    println!(
        "detected {} circles: precision {:.2}, recall {:.2}, F1 {:.2}, position RMSE {:.2}px",
        report.detected().len(),
        result.precision(),
        result.recall(),
        result.f1(),
        result.position_rmse()
    );

    // 6. Structured errors instead of panics: impossible workloads are
    //    rejected up front…
    let invalid = JobSpec::new(StrategySpec::Sequential, image.clone(), params.clone());
    match engine.submit(invalid.iterations(0)) {
        Err(RunError::InvalidSpec(msg)) => println!("rejected as expected: {msg}"),
        other => println!("unexpected: {other:?}"),
    }

    // …and running jobs cancel cooperatively.
    let long_job = JobSpec::new(StrategySpec::Sequential, image, params)
        .seed(2)
        .iterations(50_000_000)
        .progress_stride(512);
    let handle = engine.submit(long_job).expect("spec validates");
    // First progress event = the chain is running; then pull the plug.
    let _ = handle.events().recv();
    handle.cancel();
    match handle.wait() {
        Err(RunError::Cancelled {
            completed_iterations,
        }) => println!("cancelled cooperatively after {completed_iterations} iterations"),
        other => println!("unexpected: {other:?}"),
    }
}
