//! Quickstart: detect circles in a synthetic cell image with the
//! sequential RJMCMC sampler, score against ground truth, then run the
//! same workload through the unified `Strategy` engine.
//!
//! Run with: `cargo run --release --example quickstart`

use pmcmc::prelude::*;

fn main() {
    // 1. A synthetic "stained nuclei" scene: 20 cells of mean radius 9 on a
    //    256x256 image, with noise.
    let spec = SceneSpec {
        width: 256,
        height: 256,
        n_circles: 20,
        radius_mean: 9.0,
        radius_sd: 1.0,
        radius_min: 5.0,
        radius_max: 14.0,
        noise_sd: 0.06,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(2024);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    println!("planted {} circles", scene.circles.len());

    // 2. The Bayesian model of §III: Poisson count prior, truncated-normal
    //    radius prior, overlap penalty, two-level Gaussian likelihood.
    let params = ModelParams::new(256, 256, 20.0, 9.0);
    let model = NucleiModel::new(&image, params);

    // 3. Run the chain with a convergence detector.
    let mut sampler = Sampler::new_empty(&model, 1);
    let mut detector = ConvergenceDetector::new(20, 0.5);
    while sampler.iterations() < 200_000 {
        sampler.run(500);
        if detector.push(sampler.iterations(), sampler.log_posterior()) {
            break;
        }
    }
    println!(
        "converged after {} iterations (acceptance rate {:.1}%)",
        sampler.iterations(),
        100.0 * sampler.stats.acceptance_rate()
    );

    // 4. Score the detections.
    let result = match_circles(&scene.circles, sampler.config.circles(), 5.0);
    println!(
        "detected {} circles: precision {:.2}, recall {:.2}, F1 {:.2}, position RMSE {:.2}px",
        sampler.config.len(),
        result.precision(),
        result.recall(),
        result.f1(),
        result.position_rmse()
    );
    for kind in MoveKind::ALL {
        let c = sampler.stats.kind(kind);
        if c.proposed > 0 {
            println!(
                "  {:<9} proposed {:>6}  accepted {:>6} ({:.1}%)",
                kind.label(),
                c.proposed,
                c.accepted,
                100.0 * c.accepted as f64 / c.proposed as f64
            );
        }
    }

    // 5. The same workload through the unified engine: any registered
    //    scheme is one `by_name` away (see `examples/strategy_sweep.rs`
    //    for the full registry sweep).
    let pool = WorkerPool::new(4);
    let req = RunRequest::new(&image, &model.params, &pool, 1).iterations(sampler.iterations());
    let report = by_name("periodic")
        .expect("periodic is registered")
        .run(&req);
    let m = match_circles(&scene.circles, report.detected(), 5.0);
    println!(
        "engine: periodic ({}) found {} circles in {:.2}s, F1 {:.2}",
        report.validity.label(),
        report.detected().len(),
        report.total_time.as_secs_f64(),
        m.f1()
    );
}
