//! Full cell-detection pipeline with visual output, following §III of the
//! paper end to end: synthetic *stained* RGB micrograph → colour-emphasis
//! filter ("the input image is filtered to emphasise the colour of
//! interest") → threshold diagnostics → RJMCMC detection → posterior
//! samples → annotated overlay images.
//!
//! Writes `cell_input.pgm`, `cell_mask.pgm`, `cell_occupancy.pgm` and
//! `cell_overlay.ppm` into the working directory (green = ground truth,
//! red = detections).
//!
//! This example stays on the scheme-agnostic `Sampler` layer because it
//! collects traces and posterior samples the uniform report does not
//! carry; for service-style runs use the job API (see
//! `examples/strategy_sweep.rs`).
//!
//! Run with: `cargo run --release --example cell_detection [seed]`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).

use pmcmc::core::SampleCollector;
use pmcmc::imaging::color::{emphasize_color, render_stained};
use pmcmc::imaging::filter::{otsu_threshold, threshold};
use pmcmc::imaging::io::{colors, save_mask_pgm, save_pgm, RgbImage};
use pmcmc::parallel::eq5_estimate;
use pmcmc::prelude::*;

/// Purple-ish nuclear stain on pale tissue.
const STAIN: [f32; 3] = [0.55, 0.15, 0.55];
const TISSUE: [f32; 3] = [0.88, 0.80, 0.76];

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    let spec = SceneSpec {
        width: 384,
        height: 384,
        n_circles: 35,
        radius_mean: 9.0,
        radius_sd: 1.2,
        radius_min: 5.0,
        radius_max: 14.0,
        noise_sd: 0.07,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(seed);
    let scene = generate(&spec, &mut rng);
    // Render the colour micrograph, then apply the §III colour-emphasis
    // filter to obtain the intensity image the model consumes.
    let rgb = render_stained(
        spec.width,
        spec.height,
        &scene.circles,
        STAIN,
        TISSUE,
        1.0,
        0.04,
        &mut rng,
    );
    let image = emphasize_color(&rgb, STAIN, 0.3);

    // Pre-processing diagnostics: the eq. (5) density estimate that
    // intelligent/blind partitioning use as mechanical prior knowledge.
    let theta = otsu_threshold(&image);
    let mask = threshold(&image, theta);
    let estimate = eq5_estimate(mask.count_ones(), spec.radius_mean);
    println!(
        "otsu threshold {theta:.3}; eq.(5) estimates {estimate:.1} artifacts (truth: {})",
        scene.circles.len()
    );

    // Detection with trace + posterior-sample collection.
    let params = ModelParams::new(384, 384, estimate, 9.0);
    let model = NucleiModel::new(&image, params);
    let mut sampler = Sampler::new_empty(&model, seed ^ 0xABCD);
    let mut trace = Trace::new();
    let mut collector = SampleCollector::new(384, 384, 4, 250);
    let mut detector = ConvergenceDetector::new(20, 0.5);
    let mut converged = None;
    let budget: u64 = if std::env::var_os("PMCMC_QUICK").is_some() {
        40_000
    } else {
        300_000
    };
    while sampler.iterations() < budget {
        sampler.run_observed(2_000, 500, |it, cfg, lp| {
            trace.push(it, cfg.len(), lp);
            if converged.is_some() {
                collector.observe(it, cfg);
            }
        });
        if converged.is_none() && detector.push(sampler.iterations(), sampler.log_posterior()) {
            converged = detector.converged_at();
        }
        if let Some(at) = converged {
            // Post-convergence sampling window: 2x the burn-in budget.
            if sampler.iterations() > 2 * at {
                break;
            }
        }
    }
    let (count_mean, count_sd) = trace.count_summary(0.25);
    println!(
        "converged at {:?} iterations; posterior count {:.1} ± {:.1}; geweke z {:.2}",
        converged,
        count_mean,
        count_sd,
        trace.geweke_z()
    );
    let (lo, hi) = collector.count.credible_interval(0.9);
    println!(
        "posterior over interpretations: mode {} cells, mean {:.2}, 90% CI [{lo}, {hi}] from {} samples",
        collector.count.mode(),
        collector.count.mean(),
        collector.count.samples()
    );

    let m = match_circles(&scene.circles, sampler.config.circles(), 5.0);
    println!(
        "precision {:.2} recall {:.2} F1 {:.2} (missed {}, spurious {}, duplicates {})",
        m.precision(),
        m.recall(),
        m.f1(),
        m.missed.len(),
        m.spurious.len(),
        m.duplicates.len()
    );

    // Visual output.
    save_pgm(&image, "cell_input.pgm").expect("write input");
    save_mask_pgm(&mask, "cell_mask.pgm").expect("write mask");
    save_pgm(&collector.occupancy_map(), "cell_occupancy.pgm").expect("write occupancy");
    let mut overlay = RgbImage::from_gray(&image);
    for c in &scene.circles {
        overlay.draw_circle(c, colors::GREEN);
    }
    for c in sampler.config.circles() {
        overlay.draw_circle(c, colors::RED);
    }
    overlay.save_ppm("cell_overlay.ppm").expect("write overlay");
    println!("wrote cell_input.pgm, cell_mask.pgm, cell_occupancy.pgm, cell_overlay.ppm");
}
