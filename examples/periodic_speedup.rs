//! Periodic partitioning (§V) versus the sequential baseline: same
//! iteration budget, measured wall time, plus the eq. (2) prediction —
//! both schemes driven through the typed job API (one `Engine` per pool
//! size, one `JobSpec` per run).
//!
//! Run with: `cargo run --release --example periodic_speedup [iters]`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).

use pmcmc::parallel::theory::eq2_fraction;
use pmcmc::prelude::*;

fn main() {
    let default_iters: u64 = if std::env::var_os("PMCMC_QUICK").is_some() {
        20_000
    } else {
        200_000
    };
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_iters);

    // The §VII workload scaled to a quick demo: a cell field with q_g = 0.4.
    let spec = SceneSpec {
        width: 512,
        height: 512,
        n_circles: 60,
        radius_mean: 10.0,
        radius_sd: 1.2,
        radius_min: 5.0,
        radius_max: 18.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(99);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    let params = ModelParams::new(512, 512, 60.0, 10.0);

    // Sequential baseline on a single-worker engine.
    let baseline = Engine::new(1).expect("worker count is positive");
    let seq = baseline
        .submit(
            JobSpec::new(StrategySpec::Sequential, image.clone(), params.clone())
                .seed(5)
                .iterations(iters),
        )
        .expect("spec validates")
        .wait()
        .expect("sequential run completes");
    let t_seq = seq.total_time;
    println!(
        "sequential: {iters} iterations in {:.2}s ({} circles)",
        t_seq.as_secs_f64(),
        seq.detected().len()
    );

    // Periodic partitioning with the §VII corner scheme: the same job
    // shape, swept over pool sizes. The strategy runs its local phases on
    // the engine's shared pool.
    let periodic = StrategySpec::Periodic(PeriodicOptions {
        global_phase_iters: 256,
        scheme: PartitionScheme::Corner,
        ..PeriodicOptions::default()
    });
    for threads in [2usize, 4] {
        let engine = Engine::new(threads).expect("worker count is positive");
        let report = engine
            .submit(
                JobSpec::new(periodic, image.clone(), params.clone())
                    .seed(5)
                    .iterations(iters),
            )
            .expect("spec validates")
            .wait()
            .expect("periodic run completes");
        let frac = report.total_time.as_secs_f64() / t_seq.as_secs_f64();
        let phase = |name: &str| report.phase(name).map_or(0.0, |d| d.as_secs_f64());
        println!(
            "periodic ({threads} threads): {} iterations in {:.2}s → {:.0}% of sequential \
             (eq.2 ideal with s={threads}: {:.0}%) [global {:.2}s, local {:.2}s, overhead {:.2}s; \
             {} circles]",
            report.iterations,
            report.total_time.as_secs_f64(),
            100.0 * frac,
            100.0 * eq2_fraction(0.4, threads),
            phase("global"),
            phase("local"),
            phase("overhead"),
            report.detected().len()
        );
    }
}
