//! Periodic partitioning (§V) versus the sequential baseline: same
//! iteration budget, measured wall time, plus the eq. (2) prediction.
//!
//! Run with: `cargo run --release --example periodic_speedup [iters]`

use pmcmc::parallel::theory::eq2_fraction;
use pmcmc::prelude::*;
use std::time::Instant;

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    // The §VII workload scaled to a quick demo: a cell field with q_g = 0.4.
    let spec = SceneSpec {
        width: 512,
        height: 512,
        n_circles: 60,
        radius_mean: 10.0,
        radius_sd: 1.2,
        radius_min: 5.0,
        radius_max: 18.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(99);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    let params = ModelParams::new(512, 512, 60.0, 10.0);
    let model = NucleiModel::new(&image, params);

    // Sequential baseline.
    let t0 = Instant::now();
    let mut seq = Sampler::new(&model, 5);
    seq.run(iters);
    let t_seq = t0.elapsed();
    println!(
        "sequential: {iters} iterations in {:.2}s ({} circles)",
        t_seq.as_secs_f64(),
        seq.config.len()
    );

    // Periodic partitioning with the §VII corner scheme on 4 threads.
    for threads in [2usize, 4] {
        let mut ps = PeriodicSampler::new(
            &model,
            5,
            PeriodicOptions {
                global_phase_iters: 256,
                scheme: PartitionScheme::Corner,
                threads,
                ..PeriodicOptions::default()
            },
        );
        let report = ps.run(iters);
        let frac = report.total_time.as_secs_f64() / t_seq.as_secs_f64();
        println!(
            "periodic ({threads} threads): {} iterations in {:.2}s → {:.0}% of sequential \
             (eq.2 ideal with s={threads}: {:.0}%) [global {:.2}s, local {:.2}s, overhead {:.2}s; \
             {} circles]",
            report.total_iters(),
            report.total_time.as_secs_f64(),
            100.0 * frac,
            100.0 * eq2_fraction(0.4, threads),
            report.global_time.as_secs_f64(),
            report.local_time.as_secs_f64(),
            report.overhead_time.as_secs_f64(),
            ps.config().len()
        );
    }
}
