//! Speculative moves ([11]): measured iterations-per-round and wall-time
//! speedup versus the (1 − p_r)/(1 − p_rⁿ) prediction of §VI.
//!
//! This example stays on the scheme-specific [`SpeculativeSampler`] layer
//! because it reads per-round statistics the uniform report does not
//! carry; for service-style runs use `StrategySpec::Speculative` through
//! the job API (see `examples/strategy_sweep.rs`).
//!
//! Run with: `cargo run --release --example speculative [iters]`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).

use pmcmc::parallel::theory::{speculative_fraction, speculative_iters_per_round};
use pmcmc::prelude::*;
use std::time::Instant;

fn main() {
    let default_iters: u64 = if std::env::var_os("PMCMC_QUICK").is_some() {
        10_000
    } else {
        100_000
    };
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_iters);

    let spec = SceneSpec {
        width: 384,
        height: 384,
        n_circles: 40,
        radius_mean: 9.0,
        radius_sd: 1.0,
        radius_min: 5.0,
        radius_max: 14.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(17);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    let params = ModelParams::new(384, 384, 40.0, 9.0);
    let model = NucleiModel::new(&image, params);

    // Sequential reference (1 lane).
    let t0 = Instant::now();
    let mut seq = SpeculativeSampler::new(&model, 3, 1);
    seq.run(iters);
    let t_seq = t0.elapsed().as_secs_f64();
    let pr = seq.stats.rejection_rate();
    println!("sequential: {t_seq:.2}s for {iters} iterations, rejection rate p_r = {pr:.3}");

    for lanes in [2usize, 4, 8] {
        let t1 = Instant::now();
        let mut s = SpeculativeSampler::new(&model, 3, lanes);
        s.run(iters);
        let t = t1.elapsed().as_secs_f64();
        let ipr = s.iterations() as f64 / s.rounds() as f64;
        println!(
            "{lanes} lanes: {:.2}s → {:.0}% of sequential (theory {:.0}%); \
             iterations/round {:.2} (theory {:.2}); {} circles found",
            t,
            100.0 * t / t_seq,
            100.0 * speculative_fraction(pr, lanes),
            ipr,
            speculative_iters_per_round(pr, lanes),
            s.config.len()
        );
    }
}
