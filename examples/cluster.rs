//! Cluster execution quickstart: run jobs on the eq. (4) sharded backend.
//!
//! The paper's §VI scaling argument ends at eq. (4) — a cluster of `s`
//! machines with `t` threads each. This example drives its execution
//! counterpart: an `Engine` on a `ShardedBackend` simulating that
//! topology with per-node worker pools and bounded admission queues,
//! behind the exact same `JobSpec` → `JobHandle` surface as local runs.
//!
//! Run with: `cargo run --release --example cluster`
//! (`PMCMC_QUICK=1` shrinks the budget for CI smoke runs).
//!
//! Pass `--distributed` (or set `PMCMC_DISTRIBUTED=1`) to run the same
//! sweep on the *socket-backed* distributed backend instead: the example
//! stands up two in-process node daemons on loopback TCP and coordinates
//! them through the versioned wire protocol — the exact deployment shape
//! of one `node_daemon` process per machine, minus the machines.

use pmcmc::parallel::theory::eq4_time;
use pmcmc::prelude::*;

fn main() {
    let distributed = std::env::args().any(|a| a == "--distributed")
        || std::env::var_os("PMCMC_DISTRIBUTED").is_some();
    let budget: u64 = if std::env::var_os("PMCMC_QUICK").is_some() {
        5_000
    } else {
        50_000
    };

    // A synthetic scene, as in the quickstart.
    let spec = SceneSpec {
        width: 256,
        height: 256,
        n_circles: 16,
        radius_mean: 9.0,
        radius_sd: 1.0,
        radius_min: 5.0,
        radius_max: 14.0,
        noise_sd: 0.06,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(7);
    let scene = generate(&spec, &mut rng);
    let image = scene.render(&mut rng);
    let params = ModelParams::new(256, 256, 16.0, 9.0);

    // 1. Choose a backend. `Engine::new(t)` is a single machine;
    //    `Engine::sharded` simulates an s × t cluster in-process; with
    //    `--distributed`, `Engine::distributed` coordinates real node
    //    daemons over TCP sockets. Topologies also carry the per-node
    //    admission bound: with `max_in_flight(1)`, submitting more jobs
    //    than nodes back-pressures the submitter instead of
    //    oversubscribing a node.
    let topology = ClusterTopology::new(2, 2).max_in_flight(1);
    // Daemons live for the whole sweep; dropping them after main ends the
    // processes' threads with the process.
    let mut daemons: Vec<InProcessDaemon> = Vec::new();
    let engine = if distributed {
        for _ in 0..topology.nodes() {
            daemons.push(InProcessDaemon::spawn(2, 1).expect("loopback daemon starts"));
        }
        let addrs: Vec<std::net::SocketAddr> = daemons.iter().map(|d| d.addr()).collect();
        println!(
            "distributed mode: {} node daemons on {:?}",
            daemons.len(),
            addrs
        );
        Engine::with_backend(
            DistributedBackend::connect_with(
                &addrs,
                DistributedConfig {
                    max_in_flight: 1,
                    ..DistributedConfig::default()
                },
            )
            .expect("coordinator connects"),
        )
    } else {
        Engine::sharded(topology).expect("topology is valid")
    };
    println!(
        "cluster: {topology} via the `{}` backend",
        engine.backend().name()
    );

    // 2. Submit a batch exactly as on a local engine — the backend places
    //    jobs on nodes in LPT order and streams reports as they finish.
    let jobs = |n: u64| -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                JobSpec::new(StrategySpec::Sequential, image.clone(), params.clone())
                    .seed(i)
                    .iterations(budget)
            })
            .collect()
    };
    let start = std::time::Instant::now();
    let mut batch = engine.submit_batch(jobs(4)).expect("specs validate");
    while let Some((idx, result)) = batch.next_finished() {
        let report = result.expect("job completes");
        // 3. Read per-node timings: which node ran the job, how long it
        //    waited in the admission queue, how long the node was busy.
        let nt = &report.node_timings[0];
        println!(
            "job {idx}: {} on {} (queued {:.1}ms, busy {:.1}ms, {} circles)",
            report.strategy,
            nt.node,
            nt.queued.as_secs_f64() * 1e3,
            nt.busy.as_secs_f64() * 1e3,
            report.detected().len()
        );
    }
    let makespan = start.elapsed().as_secs_f64();

    // 4. Compare the measured makespan against eq. (4). Calibrate the
    //    per-iteration time τ from an independent 1-node baseline run,
    //    then let the model predict the s-node makespan: the batch is
    //    fully partitionable (q_g = 0) and sequential jobs use no
    //    speculative lanes (t = 1 in the formula), so the prediction is
    //    baseline/s.
    let baseline_engine =
        Engine::sharded(ClusterTopology::new(1, 2).max_in_flight(1)).expect("topology is valid");
    let t0 = std::time::Instant::now();
    for result in baseline_engine
        .submit_batch(jobs(4))
        .expect("specs validate")
        .wait_all()
    {
        result.expect("baseline job completes");
    }
    let baseline = t0.elapsed().as_secs_f64();
    let total_iters = (4 * budget) as f64;
    let tau = baseline / total_iters;
    let predicted = eq4_time(total_iters, 0.0, tau, tau, topology.nodes(), 1, 0.0, 0.0);
    println!(
        "batch makespan {:.1}ms on {} nodes vs eq4 prediction {:.1}ms \
         (from a {:.1}ms 1-node baseline; close on an idle multi-core \
         host, while a core-starved host time-slices the nodes back \
         toward the baseline)",
        makespan * 1e3,
        topology.nodes(),
        predicted * 1e3,
        baseline * 1e3
    );

    // 5. Split placement: ONE job striped across every node, per-node
    //    reports merged through the blind duplicate-clustering path.
    let engine = Engine::with_backend(
        ShardedBackend::new(ClusterTopology::new(2, 2))
            .expect("topology is valid")
            .placement(ShardPlacement::SplitJobs),
    );
    let report = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, image.clone(), params.clone())
                .seed(7)
                .iterations(budget),
        )
        .expect("spec validates")
        .wait()
        .expect("split job completes");
    println!(
        "split run: {} stripes merged into {} detections (validity: {})",
        report.diagnostics.partitions,
        report.detected().len(),
        report.validity.label()
    );
    for nt in &report.node_timings {
        println!("  {} busy {:.1}ms", nt.node, nt.busy.as_secs_f64() * 1e3);
    }
    let truth = match_circles(&scene.circles, report.detected(), 5.0);
    println!(
        "split-run quality vs ground truth: F1 {:.3} ({} planted)",
        truth.f1(),
        scene.circles.len()
    );
}
