//! # pmcmc — Parallel MCMC Image Processing
//!
//! A Rust reproduction of *"On the Parallelisation of MCMC-based Image
//! Processing"* (J. M. R. Byrd, S. A. Jarvis, A. H. Bhalerao — IEEE IPDPS
//! Workshops, 2010).
//!
//! The paper parallelises a reversible-jump MCMC application — detecting
//! stained cell nuclei, abstracted to *finding circles of high intensity*
//! — along the data axis, and this workspace implements all of it behind
//! one engine:
//!
//! | Strategy name | Module | Statistical validity |
//! |---|---|---|
//! | `sequential` (baseline) | [`core::sampler`] | exact |
//! | `periodic` (§V) | [`parallel::periodic`] | exact |
//! | `speculative` ([11]) | [`parallel::speculative`] | exact |
//! | `mc3` — (MC)³ (§IV) | [`core::mc3`] + [`parallel::mc3par`] | exact |
//! | `intelligent` (§VIII) | [`parallel::intelligent`] | heuristic |
//! | `blind` (§VIII) | [`parallel::blind`] | heuristic |
//! | `naive` (anti-baseline, §II) | [`parallel::naive`] | broken (by design) |
//!
//! ## Quickstart: the `Strategy` engine
//!
//! Every scheme is runnable through the unified engine in
//! [`parallel::engine`]: build one [`RunRequest`](prelude::RunRequest),
//! pick strategies from the registry (or by name), and compare the
//! uniform [`RunReport`](prelude::RunReport)s:
//!
//! ```
//! use pmcmc::prelude::*;
//!
//! // Generate a synthetic cell image with known ground truth.
//! let spec = SceneSpec { width: 128, height: 128, n_circles: 6, ..SceneSpec::default() };
//! let mut rng = Xoshiro256::new(7);
//! let scene = generate(&spec, &mut rng);
//! let image = scene.render(&mut rng);
//!
//! // One request shared by every scheme: image, model parameters,
//! // worker pool, seed, iteration budget.
//! let params = ModelParams::new(128, 128, 6.0, 10.0);
//! let pool = WorkerPool::new(4);
//! let req = RunRequest::new(&image, &params, &pool, 42).iterations(10_000);
//!
//! // Run one scheme by name…
//! let report = by_name("periodic").unwrap().run(&req);
//! println!("periodic found {} circles", report.detected().len());
//! assert!(report.validity.is_exact());
//!
//! // …or sweep the whole registry.
//! for strategy in registry() {
//!     let report = strategy.run(&req);
//!     println!("{:<12} {} circles", report.strategy, report.detected().len());
//! }
//! ```
//!
//! The scheme-specific layers stay public for callers that need richer
//! control or outputs — e.g. [`core::Sampler`] for bare chains,
//! [`parallel::PeriodicSampler`] for phase-level accounting, or
//! [`parallel::run_blind`] for seam-merge details.
//!
//! See `examples/` for the full pipelines (`strategy_sweep` drives every
//! registered strategy through the engine) and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

pub use pmcmc_core as core;
pub use pmcmc_imaging as imaging;
pub use pmcmc_parallel as parallel;
pub use pmcmc_runtime as runtime;

/// One-stop imports for applications.
pub mod prelude {
    pub use pmcmc_core::{
        match_circles, Configuration, ConvergenceDetector, Mc3, ModelParams, MoveKind, MoveWeights,
        NucleiModel, ProposalScales, Sampler, Trace, Xoshiro256,
    };
    pub use pmcmc_imaging::synth::{generate, generate_clustered, ClusterSpec, Scene, SceneSpec};
    pub use pmcmc_imaging::{Circle, GrayImage, Mask, PartitionGrid, Rect};
    pub use pmcmc_parallel::{
        by_name, registry, run_blind, run_intelligent, run_naive, BlindOptions, BlindStrategy,
        DisputePolicy, IntelligentPartitioner, IntelligentStrategy, Mc3Strategy, NaiveOptions,
        NaiveStrategy, PartitionScheme, PeriodicOptions, PeriodicSampler, PeriodicStrategy,
        RunReport, RunRequest, SequentialStrategy, SpeculativeSampler, SpeculativeStrategy,
        Strategy, SubChainOptions, Validity, STRATEGY_NAMES,
    };
    pub use pmcmc_runtime::WorkerPool;
}
