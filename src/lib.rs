//! # pmcmc — Parallel MCMC Image Processing
//!
//! A Rust reproduction of *"On the Parallelisation of MCMC-based Image
//! Processing"* (J. M. R. Byrd, S. A. Jarvis, A. H. Bhalerao — IEEE IPDPS
//! Workshops, 2010).
//!
//! The paper parallelises a reversible-jump MCMC application — detecting
//! stained cell nuclei, abstracted to *finding circles of high intensity*
//! — along the data axis, and this workspace implements all of it:
//!
//! | Method | Module | Statistical validity |
//! |---|---|---|
//! | Sequential RJMCMC baseline | [`core::sampler`] | exact |
//! | Periodic partitioning (§V) | [`parallel::periodic`] | exact |
//! | Speculative moves ([11]) | [`parallel::speculative`] | exact |
//! | (MC)³ coupled chains (§IV) | [`core::mc3`] | exact |
//! | Intelligent partitioning (§VIII) | [`parallel::intelligent`] | heuristic |
//! | Blind partitioning (§VIII) | [`parallel::blind`] | heuristic |
//! | Naive split (anti-baseline, §II) | [`parallel::naive`] | broken (by design) |
//!
//! ## Quickstart
//!
//! ```
//! use pmcmc::prelude::*;
//!
//! // Generate a synthetic cell image with known ground truth.
//! let spec = SceneSpec { width: 128, height: 128, n_circles: 6, ..SceneSpec::default() };
//! let mut rng = Xoshiro256::new(7);
//! let scene = generate(&spec, &mut rng);
//! let image = scene.render(&mut rng);
//!
//! // Build the Bayesian model and run the sequential sampler.
//! let params = ModelParams::new(128, 128, 6.0, 10.0);
//! let model = NucleiModel::new(&image, params);
//! let mut sampler = Sampler::new(&model, 42);
//! sampler.run(10_000);
//! println!("found {} circles", sampler.config.len());
//! ```
//!
//! See `examples/` for the full pipelines and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

pub use pmcmc_core as core;
pub use pmcmc_imaging as imaging;
pub use pmcmc_parallel as parallel;
pub use pmcmc_runtime as runtime;

/// One-stop imports for applications.
pub mod prelude {
    pub use pmcmc_core::{
        match_circles, Configuration, ConvergenceDetector, Mc3, ModelParams, MoveKind,
        MoveWeights, NucleiModel, ProposalScales, Sampler, Trace, Xoshiro256,
    };
    pub use pmcmc_imaging::synth::{generate, generate_clustered, ClusterSpec, Scene, SceneSpec};
    pub use pmcmc_imaging::{Circle, GrayImage, Mask, PartitionGrid, Rect};
    pub use pmcmc_parallel::{
        run_blind, run_intelligent, run_naive, BlindOptions, DisputePolicy,
        IntelligentPartitioner, NaiveOptions, PartitionScheme, PeriodicOptions, PeriodicSampler,
        SpeculativeSampler, SubChainOptions,
    };
    pub use pmcmc_runtime::WorkerPool;
}
