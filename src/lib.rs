//! # pmcmc — Parallel MCMC Image Processing
//!
//! A Rust reproduction of *"On the Parallelisation of MCMC-based Image
//! Processing"* (J. M. R. Byrd, S. A. Jarvis, A. H. Bhalerao — IEEE IPDPS
//! Workshops, 2010).
//!
//! The paper parallelises a reversible-jump MCMC application — detecting
//! stained cell nuclei, abstracted to *finding circles of high intensity*
//! — along the data axis, and this workspace implements all of it behind
//! one engine:
//!
//! | Strategy spec | Module | Statistical validity |
//! |---|---|---|
//! | `sequential` (baseline) | [`core::sampler`] | exact |
//! | `periodic` (§V) | [`parallel::periodic`] | exact |
//! | `speculative` ([11]) | [`parallel::speculative`] | exact |
//! | `mc3` — (MC)³ (§IV) | [`core::mc3`] + [`parallel::mc3par`] | exact |
//! | `intelligent` (§VIII) | [`parallel::intelligent`] | heuristic |
//! | `blind` (§VIII) | [`parallel::blind`] | heuristic |
//! | `naive` (anti-baseline, §II) | [`parallel::naive`] | broken (by design) |
//!
//! ## Quickstart: jobs on the engine
//!
//! Work is described by a typed [`JobSpec`](prelude::JobSpec) — which
//! strategy (a [`StrategySpec`](prelude::StrategySpec) variant, or its CLI
//! spelling like `"mc3:chains=4"`), which image, seed, iteration budget,
//! optional deadline and checkpoint interval — and submitted onto a shared
//! [`Engine`](prelude::Engine). The returned
//! [`JobHandle`](prelude::JobHandle) streams progress
//! [`Event`](prelude::Event)s, supports cooperative cancellation, and
//! resolves to `Result<RunReport, RunError>`:
//!
//! ```
//! use pmcmc::prelude::*;
//!
//! // Generate a synthetic cell image with known ground truth.
//! let spec = SceneSpec { width: 96, height: 96, n_circles: 4, ..SceneSpec::default() };
//! let mut rng = Xoshiro256::new(7);
//! let scene = generate(&spec, &mut rng);
//! let image = scene.render(&mut rng);
//! let params = ModelParams::new(96, 96, 4.0, 9.0);
//!
//! // One engine, one shared worker pool, any number of jobs.
//! let engine = Engine::new(2).unwrap();
//!
//! // Submit a job and observe it while it runs.
//! let strategy: StrategySpec = "periodic".parse().unwrap();
//! let job = JobSpec::new(strategy, image.clone(), params.clone())
//!     .seed(42)
//!     .iterations(3_000)
//!     .checkpoint_interval(1_000);
//! let handle = engine.submit(job).unwrap();
//! while let Ok(event) = handle.events().recv() {
//!     if let Event::Checkpoint { iterations, circles, .. } = event {
//!         println!("{iterations} iterations in, {circles} circles");
//!     }
//! }
//! let report = handle.wait().unwrap();
//! assert!(report.validity.is_exact());
//!
//! // …or batch N workloads across the same pool and stream reports as
//! // they finish.
//! let batch = engine
//!     .submit_batch(
//!         StrategySpec::all()
//!             .into_iter()
//!             .take(3)
//!             .map(|s| JobSpec::new(s, image.clone(), params.clone()).iterations(2_000))
//!             .collect(),
//!     )
//!     .unwrap();
//! for result in batch.wait_all() {
//!     println!("{} circles", result.unwrap().detected().len());
//! }
//! ```
//!
//! Handles cancel cooperatively — [`JobHandle::cancel`](prelude::JobHandle::cancel)
//! stops the run at its next token poll with
//! [`RunError::Cancelled`](prelude::RunError::Cancelled) — and invalid
//! workloads (zero iterations, empty images, mismatched dimensions) fail
//! fast with [`RunError::InvalidSpec`](prelude::RunError::InvalidSpec)
//! instead of panicking inside a scheme.
//!
//! The layers below stay public for callers that need richer control:
//! [`parallel::engine`] for synchronous borrowed-data runs
//! ([`RunRequest`](prelude::RunRequest) + [`RunCtx`](prelude::RunCtx)),
//! [`core::Sampler`] for bare chains, [`parallel::PeriodicSampler`] for
//! phase-level accounting, or [`parallel::run_blind`] for seam-merge
//! details.
//!
//! See `examples/` for the full pipelines (`strategy_sweep` drives every
//! registered strategy through the job API with live progress) and
//! `crates/bench` for the harnesses regenerating every table and figure of
//! the paper.

pub use pmcmc_core as core;
pub use pmcmc_imaging as imaging;
pub use pmcmc_parallel as parallel;
pub use pmcmc_runtime as runtime;

/// One-stop imports for applications.
pub mod prelude {
    pub use pmcmc_core::{
        match_circles, Configuration, ConvergenceDetector, Mc3, ModelParams, MoveKind, MoveWeights,
        NucleiModel, ProposalScales, Sampler, Trace, Xoshiro256,
    };
    pub use pmcmc_imaging::synth::{generate, generate_clustered, ClusterSpec, Scene, SceneSpec};
    pub use pmcmc_imaging::{Circle, GrayImage, Mask, PartitionGrid, Rect};
    pub use pmcmc_parallel::{
        registry, run_blind, run_intelligent, run_naive, Batch, BlindOptions, BlindStrategy,
        CancelToken, DisputePolicy, DistributedBackend, DistributedConfig, Engine, Event,
        ExecutionBackend, InProcessDaemon, IntelligentPartitioner, IntelligentStrategy, JobHandle,
        JobId, JobSpec, LocalBackend, Mc3Strategy, NaiveOptions, NaiveStrategy, NodeDaemon,
        NodeTiming, PartitionScheme, PeriodicOptions, PeriodicSampler, PeriodicStrategy, RunCtx,
        RunError, RunReport, RunRequest, SequentialStrategy, ShardPlacement, ShardedBackend,
        SpeculativeSampler, SpeculativeStrategy, Strategy, StrategySpec, SubChainOptions, Validity,
        STRATEGY_NAMES,
    };
    pub use pmcmc_runtime::{ClusterTopology, NodeId, WorkerPool};
}
