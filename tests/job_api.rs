//! Contract tests for the typed job API: `JobSpec` validation, live
//! observer events, cooperative cancellation (without poisoning the
//! shared pool), deadlines, and batch streaming.

use pmcmc::prelude::*;
use std::sync::Mutex;
use std::time::Duration;

fn workload(size: u32, n: usize, seed: u64) -> (GrayImage, ModelParams) {
    let spec = SceneSpec {
        width: size,
        height: size,
        n_circles: n,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(seed);
    let scene = generate(&spec, &mut rng);
    let img = scene.render(&mut rng);
    let mut params = ModelParams::new(size, size, n as f64, 8.0);
    params.noise_sd = 0.15;
    (img, params)
}

#[test]
fn invalid_specs_are_rejected_up_front() {
    let (img, params) = workload(64, 3, 1);
    let engine = Engine::new(2).unwrap();

    // Worker count 0.
    assert!(matches!(Engine::new(0), Err(RunError::InvalidSpec(_))));

    // Zero iteration budget.
    let zero = JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone()).iterations(0);
    assert!(matches!(zero.validate(), Err(RunError::InvalidSpec(_))));
    let zero = JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone()).iterations(0);
    assert!(matches!(engine.submit(zero), Err(RunError::InvalidSpec(_))));

    // Empty image.
    let empty = JobSpec::new(
        StrategySpec::Sequential,
        GrayImage::filled(0, 0, 0.0),
        params.clone(),
    );
    assert!(matches!(
        engine.submit(empty),
        Err(RunError::InvalidSpec(_))
    ));

    // Image / parameter dimension mismatch.
    let mismatched = JobSpec::new(
        StrategySpec::Sequential,
        img,
        ModelParams::new(32, 32, 3.0, 8.0),
    );
    assert!(matches!(
        engine.submit(mismatched),
        Err(RunError::InvalidSpec(_))
    ));

    // A bad batch starts nothing.
    let (img2, params2) = workload(64, 3, 2);
    let batch = engine.submit_batch(vec![
        JobSpec::new(StrategySpec::Sequential, img2.clone(), params2.clone()).iterations(500),
        JobSpec::new(StrategySpec::Sequential, img2, params2).iterations(0),
    ]);
    assert!(matches!(batch, Err(RunError::InvalidSpec(_))));
}

#[test]
fn cancellation_stops_a_running_job_without_poisoning_the_pool() {
    let (img, params) = workload(96, 5, 3);
    let engine = Engine::new(2).unwrap();

    // A job whose budget is far beyond what could finish quickly.
    let budget = 200_000_000u64;
    let handle = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                .seed(5)
                .iterations(budget)
                .progress_stride(256),
        )
        .unwrap();

    // Wait until the chain demonstrably runs, then pull the plug.
    let first = handle.events().recv().expect("job emits events");
    assert_eq!(first, Event::PhaseStarted { phase: "chain" });
    let _ = handle.events().recv().expect("progress while running");
    handle.cancel();
    match handle.wait() {
        Err(RunError::Cancelled {
            completed_iterations,
        }) => {
            assert!(completed_iterations > 0, "chain never ran");
            assert!(
                completed_iterations < budget,
                "cancellation did not stop early"
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // The shared pool must survive: the same engine runs a fresh job to
    // completion afterwards.
    let report = engine
        .submit(
            JobSpec::new(
                StrategySpec::Periodic(PeriodicOptions::default()),
                img,
                params,
            )
            .seed(5)
            .iterations(2_000),
        )
        .unwrap()
        .wait()
        .expect("pool still serves jobs after a cancellation");
    assert!(report.iterations >= 2_000);
}

#[test]
fn cancellation_stops_partition_schemes_mid_phase() {
    // Partition chains poll the token at every convergence stride, so a
    // cancel lands *inside* the chains phase — long before the per-chain
    // iteration caps are reached.
    let (img, params) = workload(128, 6, 4);
    let engine = Engine::new(2).unwrap();
    let handle = engine
        .submit(
            JobSpec::new(StrategySpec::Blind(BlindOptions::default()), img, params)
                .seed(9)
                .iterations(200_000_000),
        )
        .unwrap();
    // First phase event proves the job is inside run_blind.
    assert_eq!(
        handle.events().recv().expect("job emits events"),
        Event::PhaseStarted { phase: "chains" }
    );
    handle.cancel();
    match handle.wait() {
        Err(RunError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn observer_events_are_ordered_and_progress_is_monotone() {
    let (img, params) = workload(96, 5, 7);
    let engine = Engine::new(3).unwrap();
    let events: std::sync::Arc<Mutex<Vec<Event>>> = std::sync::Arc::default();
    let sink = std::sync::Arc::clone(&events);
    let report = engine
        .submit(
            JobSpec::new(
                StrategySpec::Periodic(PeriodicOptions::default()),
                img,
                params,
            )
            .seed(11)
            .iterations(6_000)
            .progress_stride(512)
            .checkpoint_interval(1_500)
            .observer(move |ev| sink.lock().unwrap().push(ev.clone())),
        )
        .unwrap()
        .wait()
        .expect("job completes");

    let events = events.lock().unwrap();
    assert!(
        matches!(events.first(), Some(Event::PhaseStarted { .. })),
        "first event must open a phase, got {:?}",
        events.first()
    );
    let progress: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Progress { done, total } => Some((*done, *total)),
            _ => None,
        })
        .collect();
    assert!(!progress.is_empty(), "no progress events observed");
    for pair in progress.windows(2) {
        assert!(pair[1].0 >= pair[0].0, "progress not monotone: {pair:?}");
    }
    let (final_done, total) = *progress.last().unwrap();
    assert_eq!(total, 6_000);
    assert!(final_done >= total, "job finished below its budget");
    assert_eq!(
        final_done, report.iterations,
        "progress disagrees with report"
    );

    let checkpoints: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Checkpoint { iterations, .. } => Some(*iterations),
            _ => None,
        })
        .collect();
    assert!(!checkpoints.is_empty(), "no checkpoints observed");
    for pair in checkpoints.windows(2) {
        assert!(pair[1] > pair[0], "checkpoints not increasing: {pair:?}");
    }
}

#[test]
fn handle_channel_streams_the_same_events_as_the_observer() {
    let (img, params) = workload(64, 3, 13);
    let engine = Engine::new(2).unwrap();
    let handle = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img, params)
                .seed(3)
                .iterations(2_000)
                .progress_stride(500),
        )
        .unwrap();
    let mut streamed = Vec::new();
    while let Ok(ev) = handle.events().recv() {
        streamed.push(ev);
    }
    assert_eq!(
        streamed.first(),
        Some(&Event::PhaseStarted { phase: "chain" })
    );
    assert_eq!(
        streamed
            .iter()
            .filter(|e| matches!(e, Event::Progress { .. }))
            .count(),
        4,
        "2000 iterations at stride 500"
    );
    assert!(handle.wait().is_ok());
}

#[test]
fn deadline_is_a_structured_error() {
    let (img, params) = workload(96, 5, 17);
    let engine = Engine::new(2).unwrap();
    let result = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img, params)
                .seed(1)
                .iterations(200_000_000)
                .progress_stride(256)
                .deadline(Duration::from_millis(50)),
        )
        .unwrap()
        .wait();
    match result {
        Err(RunError::DeadlineExceeded {
            completed_iterations,
        }) => assert!(completed_iterations < 200_000_000),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn batch_streams_reports_as_jobs_finish() {
    let (img, params) = workload(96, 5, 19);
    let engine = Engine::new(4).unwrap();
    // Deliberately unequal budgets so completion order differs from
    // submission order.
    let budgets = [9_000u64, 1_000, 4_000];
    let specs: Vec<JobSpec> = budgets
        .iter()
        .map(|&iters| {
            JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                .seed(iters)
                .iterations(iters)
        })
        .collect();
    let mut batch = engine.submit_batch(specs).unwrap();
    assert_eq!(batch.len(), 3);

    let mut seen = Vec::new();
    while let Some((idx, result)) = batch.next_finished() {
        let report = result.expect("batch job completes");
        assert_eq!(report.iterations, budgets[idx]);
        seen.push(idx);
    }
    assert_eq!(seen.len(), 3);
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2], "every job reported exactly once");
}

#[test]
fn batch_wait_all_returns_submission_order() {
    let (img, params) = workload(64, 3, 23);
    let engine = Engine::new(2).unwrap();
    let strategies = [
        StrategySpec::Sequential,
        StrategySpec::Speculative { lanes: 2 },
    ];
    let batch = engine
        .submit_batch(
            strategies
                .iter()
                .map(|&s| {
                    JobSpec::new(s, img.clone(), params.clone())
                        .seed(2)
                        .iterations(1_500)
                })
                .collect(),
        )
        .unwrap();
    let results = batch.wait_all();
    assert_eq!(results.len(), 2);
    for (result, spec) in results.iter().zip(strategies.iter()) {
        assert_eq!(result.as_ref().unwrap().strategy, spec.name());
    }
}

#[test]
fn strategy_spec_round_trips_through_cli_spelling() {
    for spec in StrategySpec::all() {
        let spelled = spec.to_string();
        let reparsed: StrategySpec = spelled.parse().expect("canonical spelling parses");
        assert_eq!(reparsed, spec, "round-trip of `{spelled}`");
    }
    assert!(matches!(
        "tachyonic".parse::<StrategySpec>(),
        Err(RunError::UnknownStrategy(_))
    ));
}
