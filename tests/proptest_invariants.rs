//! Property-based tests over the public API: the structural invariants
//! DESIGN.md §7 commits to, exercised with randomly generated inputs.

use pmcmc::core::config::Edit;
use pmcmc::core::moves::propose;
use pmcmc::core::sampler::evaluate_proposal;
use pmcmc::prelude::*;
use proptest::prelude::*;
// Both preludes export a `Strategy` trait (the engine's and proptest's);
// the explicit import shadows the glob imports in favour of proptest's,
// which is the one `arb_circle` returns.
use proptest::strategy::Strategy;

fn small_model(w: u32, h: u32) -> NucleiModel {
    let img = GrayImage::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 16) as f32 / 16.0);
    let params = ModelParams::new(w, h, 5.0, 8.0);
    NucleiModel::new(&img, params)
}

fn arb_circle(w: u32, h: u32) -> impl Strategy<Value = Circle> {
    (
        0.0..f64::from(w),
        0.0..f64::from(h),
        3.4f64..15.9, // inside the radius prior's support for r_mean=8
    )
        .prop_map(|(x, y, r)| Circle::new(x, y, r))
}

/// Circles designed to stress the span kernel: centres may sit outside the
/// image (border-clipped disks), radii range from sub-pixel (empty or
/// single-pixel spans) to larger than half the image (spans crossing many
/// bitset words and clipping on both sides).
fn arb_kernel_circle(w: u32, h: u32) -> impl Strategy<Value = Circle> {
    (
        -12.0..f64::from(w) + 12.0,
        -12.0..f64::from(h) + 12.0,
        0.0f64..3.0,
    )
        .prop_map(|(x, y, t)| {
            // Piecewise radius: sub-pixel, typical, or image-scale.
            let r = if t < 1.0 {
                0.2 + t * 1.3
            } else if t < 2.0 {
                1.5 + (t - 1.0) * 14.5
            } else {
                40.0 + (t - 2.0) * 30.0
            };
            Circle::new(x, y, r)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Applying an edit and then its inverse restores every cache.
    #[test]
    fn apply_revert_roundtrip(
        circles in prop::collection::vec(arb_circle(96, 96), 1..12),
        remove_idx in 0usize..12,
        new_circle in arb_circle(96, 96),
    ) {
        let model = small_model(96, 96);
        let mut cfg = Configuration::from_circles(&model, &circles);
        let lik0 = cfg.log_lik();
        let ov0 = cfg.overlap_area();
        let len0 = cfg.len();
        let edit = Edit {
            remove: vec![remove_idx % circles.len()],
            add: vec![new_circle],
        };
        let receipt = cfg.apply(&edit, &model);
        cfg.revert(&receipt, &model);
        prop_assert_eq!(cfg.len(), len0);
        prop_assert!((cfg.log_lik() - lik0).abs() < 1e-6);
        prop_assert!((cfg.overlap_area() - ov0).abs() < 1e-6);
        cfg.verify_consistency(&model).map_err(TestCaseError::fail)?;
    }

    /// The read-only evaluation equals the apply-based deltas for random
    /// proposals from random states.
    #[test]
    fn readonly_evaluation_matches_apply(
        circles in prop::collection::vec(arb_circle(96, 96), 1..10),
        seed in 0u64..10_000,
    ) {
        let model = small_model(96, 96);
        let mut cfg = Configuration::from_circles(&model, &circles);
        let mut rng = Xoshiro256::new(seed);
        let weights = MoveWeights::default();
        for _ in 0..10 {
            let kind = weights.sample(&mut rng);
            let Some(proposal) = propose(kind, &cfg, &model, &weights, &mut rng) else {
                continue;
            };
            if !proposal.edit.add.iter().all(|c| model.params.in_support(c)) {
                continue;
            }
            let eval = evaluate_proposal(&cfg, &model, &proposal);
            let ro_lik = cfg.delta_log_lik_readonly(&proposal.edit, &model);
            let receipt = cfg.apply(&proposal.edit, &model);
            prop_assert!((ro_lik - receipt.d_log_lik).abs() < 1e-9);
            prop_assert!(eval.d_log_posterior.is_finite());
            cfg.revert(&receipt, &model);
        }
    }

    /// Partition grids tile the image: every pixel in exactly one tile.
    #[test]
    fn grid_tiles_partition_pixels(
        xm in 8i64..200,
        ym in 8i64..200,
        ox in 0i64..200,
        oy in 0i64..200,
    ) {
        let (w, h) = (160u32, 120u32);
        let grid = PartitionGrid::new(xm, ym, ox, oy);
        let tiles = grid.tiles(w, h);
        let total: i64 = tiles.iter().map(Rect::area).sum();
        prop_assert_eq!(total, i64::from(w) * i64::from(h));
        for (i, a) in tiles.iter().enumerate() {
            for b in tiles.iter().skip(i + 1) {
                prop_assert!(!a.intersects(b));
            }
        }
        // Spot-check tile_of agreement on a lattice of points.
        for py in (0..h as i64).step_by(17) {
            for px in (0..w as i64).step_by(13) {
                let (x, y) = (px as f64 + 0.5, py as f64 + 0.5);
                let idx = grid.tile_of(x, y, w, h).expect("inside image");
                prop_assert!(tiles[idx].contains_point(x, y));
            }
        }
    }

    /// Tile-workspace eligibility is exactly the §V safeguard predicate,
    /// and eligible circles of disjoint tiles are disjoint.
    #[test]
    fn tile_eligibility_safeguard(
        circles in prop::collection::vec(arb_circle(128, 128), 1..15),
        cut_x in 32i64..96,
        cut_y in 32i64..96,
    ) {
        let model = small_model(128, 128);
        let cfg = Configuration::from_circles(&model, &circles);
        let margin = model.interaction_margin();
        let tiles = [
            Rect::new(0, 0, cut_x, cut_y),
            Rect::new(cut_x, 0, 128, cut_y),
            Rect::new(0, cut_y, cut_x, 128),
            Rect::new(cut_x, cut_y, 128, 128),
        ];
        let mut eligible_total = 0usize;
        for tile in tiles {
            let ws = pmcmc::core::TileWorkspace::new(&cfg, &model, tile);
            eligible_total += ws.eligible_count();
            // The workspace's eligible count matches a direct scan.
            let direct = circles
                .iter()
                .filter(|c| tile.contains_point(c.x, c.y) && tile.contains_circle(c, margin))
                .count();
            prop_assert_eq!(ws.eligible_count(), direct);
        }
        // No circle can be eligible in two disjoint tiles.
        prop_assert!(eligible_total <= circles.len());
    }

    /// Matching invariants: every truth/detection appears in exactly one
    /// outcome bucket, and scores stay in [0, 1].
    #[test]
    fn matching_partitions_inputs(
        truth in prop::collection::vec(arb_circle(128, 128), 0..10),
        detected in prop::collection::vec(arb_circle(128, 128), 0..10),
    ) {
        let m = match_circles(&truth, &detected, 6.0);
        prop_assert_eq!(m.matches.len() + m.missed.len(), truth.len());
        prop_assert_eq!(
            m.matches.len() + m.duplicates.len() + m.spurious.len(),
            detected.len()
        );
        for &(ti, di, d) in &m.matches {
            prop_assert!(ti < truth.len() && di < detected.len());
            prop_assert!(d <= 6.0);
        }
        prop_assert!((0.0..=1.0).contains(&m.precision()));
        prop_assert!((0.0..=1.0).contains(&m.recall()));
        prop_assert!((0.0..=1.0).contains(&m.f1()));
    }

    /// Largest-remainder allocation: exact total, near-proportionality.
    #[test]
    fn allocation_is_exact_and_fair(
        total in 0u64..100_000,
        weights in prop::collection::vec(0.0f64..100.0, 1..12),
    ) {
        let parts = pmcmc::parallel::periodic::largest_remainder_allocation(total, &weights);
        let sum: f64 = weights.iter().sum();
        prop_assert_eq!(parts.len(), weights.len());
        if sum > 0.0 {
            prop_assert_eq!(parts.iter().sum::<u64>(), total);
            for (p, w) in parts.iter().zip(weights.iter()) {
                let exact = total as f64 * w / sum;
                prop_assert!((*p as f64 - exact).abs() <= 1.0 + 1e-9);
            }
        } else {
            prop_assert_eq!(parts.iter().sum::<u64>(), 0);
        }
    }

    /// The intelligent partitioner always tiles the image exactly,
    /// whatever the mask looks like.
    #[test]
    fn intelligent_partitioner_tiles_exactly(seed in 0u64..1000) {
        let mut rng = Xoshiro256::new(seed);
        let img = GrayImage::from_fn(96, 80, |_, _| {
            if rand::Rng::gen::<f64>(&mut rng) < 0.03 { 0.9 } else { 0.1 }
        });
        let (rects, _) = IntelligentPartitioner::default().partition(&img);
        let total: i64 = rects.iter().map(Rect::area).sum();
        prop_assert_eq!(total, 96 * 80);
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                prop_assert!(!a.intersects(b));
            }
        }
    }

    /// The span kernel's prefix/bitset fast paths agree with a
    /// from-first-principles per-pixel scalar evaluation of the same edit
    /// (≤ 1e-9), over circle sets that include border-clipped, sub-pixel
    /// and large-radius disks.
    #[test]
    fn span_fastpath_matches_scalar_walk(
        circles in prop::collection::vec(arb_kernel_circle(96, 96), 0..10),
        removes in prop::collection::vec(0usize..10, 0..3),
        adds in prop::collection::vec(arb_kernel_circle(96, 96), 0..3),
    ) {
        let model = small_model(96, 96);
        let cfg = Configuration::from_circles(&model, &circles);
        let mut remove: Vec<usize> = removes
            .iter()
            .filter(|_| !circles.is_empty())
            .map(|&i| i % circles.len())
            .collect();
        remove.sort_unstable();
        remove.dedup();
        let edit = Edit { remove, add: adds };
        let fast = cfg.delta_log_lik_readonly(&edit, &model);
        // Scalar reference: per-pixel pre/post coverage over the image.
        let removed: Vec<Circle> = edit.remove.iter().map(|&i| circles[i]).collect();
        let mut scalar = 0.0f64;
        for y in 0..96i64 {
            for x in 0..96i64 {
                let count = i64::from(cfg.coverage().count(x, y));
                let minus = removed.iter().filter(|c| c.covers_pixel(x, y)).count() as i64;
                let plus = edit.add.iter().filter(|c| c.covers_pixel(x, y)).count() as i64;
                let pre = count > 0;
                let post = count - minus + plus > 0;
                if pre != post {
                    let g = model.gain.get(x as u32, y as u32);
                    scalar += if post { g } else { -g };
                }
            }
        }
        prop_assert!(
            (fast - scalar).abs() < 1e-9,
            "span kernel {} vs scalar {} (edit {:?})",
            fast,
            scalar,
            edit
        );
    }

    /// Adding a disk and removing it again is an exact identity on the
    /// bitset coverage grid: counts, bitsets, covered counter and the
    /// summed log-likelihood deltas all return to the starting state.
    #[test]
    fn coverage_add_then_remove_identity(
        base in prop::collection::vec(arb_kernel_circle(96, 96), 0..8),
        extra in arb_kernel_circle(96, 96),
    ) {
        let model = small_model(96, 96);
        let frame = Rect::new(0, 0, 96, 96);
        let (mut grid, _) = pmcmc::core::coverage::CoverageGrid::from_circles(
            frame, &base, &model.gain,
        );
        grid.assert_derived_state();
        let before = grid.clone();
        let covered_before = grid.covered_pixels();
        let d_add = grid.add_circle(&extra, &model.gain);
        grid.assert_derived_state();
        let d_rem = grid.remove_circle(&extra, &model.gain);
        grid.assert_derived_state();
        prop_assert!((d_add + d_rem).abs() < 1e-9);
        prop_assert_eq!(grid.covered_pixels(), covered_before);
        prop_assert_eq!(&grid, &before);
    }

    /// A cloned `BatchedRng` is an exact snapshot of the word stream no
    /// matter where inside the buffer the clone is taken (mid-buffer or
    /// right on a refill boundary), and no matter how the original
    /// interleaves burst-amortised `top_up` calls afterwards: both must
    /// replay the identical delivered sequence.
    #[test]
    fn batched_rng_clone_snapshots_replay_identically(
        seed in 0u64..1_000_000,
        pre in 0usize..200,
        top_up_every in prop::collection::vec(1usize..40, 0..6),
    ) {
        use rand::RngCore;
        use pmcmc::core::rng::{BatchedRng, Xoshiro256};
        let mut original = BatchedRng::new(Xoshiro256::new(seed));
        for _ in 0..pre {
            original.next_u64();
        }
        let mut snapshot = original.clone();
        // The original keeps topping its buffer up mid-stream; the
        // snapshot drains plain refills. Streams must stay equal.
        let mut drawn = 0usize;
        for &stride in &top_up_every {
            original.top_up();
            for _ in 0..stride {
                prop_assert_eq!(original.next_u64(), snapshot.next_u64());
                drawn += 1;
            }
        }
        // Push both well past the next refill boundary.
        for _ in drawn..200 {
            prop_assert_eq!(original.next_u64(), snapshot.next_u64());
        }
    }

    /// The lane kernels agree with the portable scalar fallback on every
    /// chunk length and count mix — masks equal bit for bit, and the
    /// mask-ordered gain sums equal to the last bit (`to_bits`), which is
    /// the property the byte-identical determinism suite stands on.
    #[test]
    fn simd_kernels_bit_identical_to_scalar(
        counts in prop::collection::vec(0u16..5, 0..65),
        net in -4i64..5,
    ) {
        use pmcmc::core::simd::{self, backend, force_backend, Backend};
        let gains: Vec<f64> = (0..counts.len())
            .map(|k| (k as f64) * 0.173 - 4.2)
            .collect();
        let detected = backend();
        let run = |b: Backend| {
            force_backend(b);
            let mut inc = counts.clone();
            let inc_masks = simd::inc_counts(&mut inc);
            let mut dec: Vec<u16> = counts.iter().map(|&c| c + 1).collect();
            let dec_masks = simd::dec_counts(&mut dec);
            (
                inc_masks,
                inc,
                dec_masks,
                dec,
                simd::eq_mask(&counts, 1),
                simd::range_mask(&counts, 1, 3),
                simd::occupancy_masks(&counts),
                simd::sum_gain_flips(&counts, &gains, net).to_bits(),
            )
        };
        let scalar = run(Backend::Scalar);
        let vector = run(Backend::Avx2);
        force_backend(detected);
        prop_assert_eq!(scalar, vector);
    }

    /// Speculative theory functions: fraction in (0, 1], consistent with
    /// iterations-per-round.
    #[test]
    fn speculative_theory_bounds(pr in 0.0f64..0.999, n in 1usize..64) {
        let f = pmcmc::parallel::theory::speculative_fraction(pr, n);
        prop_assert!(f > 0.0 && f <= 1.0 + 1e-12);
        let ipr = pmcmc::parallel::theory::speculative_iters_per_round(pr, n);
        prop_assert!((f * ipr - 1.0).abs() < 1e-9);
        prop_assert!(ipr <= n as f64 + 1e-9);
    }
}
