//! Property-based check of the speculative engine's exactness claim
//! (§IV, eq. (3)): for random seeds, lane counts and budgets — on both
//! the inline and the team-parallel evaluation path — the speculative
//! sampler visits *byte-identical* states to the sequential sampler,
//! because discarded lanes replay the exact RNG stream the sequential
//! chain would have consumed.

use pmcmc::prelude::*;
use proptest::prelude::*;

fn small_model() -> NucleiModel {
    let img = GrayImage::from_fn(72, 72, |x, y| {
        let dx = f64::from(x) - 30.0;
        let dy = f64::from(y) - 36.0;
        if (dx * dx + dy * dy).sqrt() < 9.0 {
            0.82
        } else {
            0.12
        }
    });
    let params = ModelParams::new(72, 72, 3.0, 8.0);
    NucleiModel::new(&img, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The kept-decision sequence — and therefore the full chain state —
    /// matches the sequential sampler for any seed/lane-count/budget.
    #[test]
    fn speculative_states_match_sequential(
        seed in 0u64..5_000,
        members in 1usize..5,
        iters in 200u64..900,
        parallel in any::<bool>(),
    ) {
        let model = small_model();
        let mut spec = SpeculativeSampler::new(&model, seed, members);
        spec.set_parallel_eval(parallel);
        spec.run(iters);

        let mut seq = Sampler::new(&model, seed);
        // Rounds stop at the first accepted lane, so the speculative
        // iteration count can overshoot the request; replay the
        // sequential chain to wherever the engine actually stopped.
        seq.run(spec.iterations());

        prop_assert_eq!(spec.config.circles(), seq.config.circles());
        prop_assert_eq!(&spec.stats, &seq.stats);
        prop_assert!((spec.log_posterior() - seq.log_posterior()).abs() < 1e-12);
    }
}
