//! Contract tests for the socket-backed distributed backend: a 1-node
//! distributed cluster (an in-process daemon on a loopback socket) must
//! produce reports byte-identical to the local backend for the same
//! seed — the wire format transmits, it must never perturb.

use pmcmc::prelude::*;

fn workload(size: u32, n: usize, seed: u64) -> (GrayImage, ModelParams) {
    let spec = SceneSpec {
        width: size,
        height: size,
        n_circles: n,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(seed);
    let scene = generate(&spec, &mut rng);
    let img = scene.render(&mut rng);
    let mut params = ModelParams::new(size, size, n as f64, 8.0);
    params.noise_sd = 0.15;
    (img, params)
}

/// Everything deterministic a report carries, with float fields captured
/// bit-for-bit (wall times and node timings are excluded — they are the
/// only non-deterministic fields by design).
fn report_fingerprint(r: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{}|{:?}|iters={}",
        r.strategy, r.validity, r.iterations
    );
    let _ = write!(
        out,
        "|parts={}|lp={:016x}",
        r.diagnostics.partitions,
        r.diagnostics.log_posterior.to_bits()
    );
    if let Some(acc) = r.diagnostics.acceptance_rate {
        let _ = write!(out, "|acc={:016x}", acc.to_bits());
    }
    for note in &r.diagnostics.notes {
        let _ = write!(out, "|note={note}");
    }
    for p in &r.phases {
        let _ = write!(out, "|phase={}", p.phase);
    }
    for c in r.detected() {
        let _ = write!(
            out,
            "|c={:016x},{:016x},{:016x}",
            c.x.to_bits(),
            c.y.to_bits(),
            c.r.to_bits()
        );
    }
    out
}

#[test]
fn local_and_one_node_distributed_reports_are_byte_identical() {
    let (img, params) = workload(160, 9, 77);
    // Matching worker counts matter: speculative lane derivation reads the
    // pool width, and it must see 3 on both sides.
    let local = Engine::new(3).expect("local engine");
    let daemon = InProcessDaemon::spawn(3, 2).expect("loopback daemon");
    let distributed = Engine::distributed(&[daemon.addr()]).expect("1-node distributed cluster");
    assert_eq!(distributed.backend().name(), "distributed");
    for strategy in ["periodic", "speculative", "mc3", "blind"] {
        let run = |engine: &Engine| {
            let spec: StrategySpec = strategy.parse().expect("registered name");
            let report = engine
                .submit(
                    JobSpec::new(spec, img.clone(), params.clone())
                        .seed(33)
                        .iterations(8_000),
                )
                .expect("spec validates")
                .wait()
                .expect("job completes");
            report_fingerprint(&report)
        };
        assert_eq!(
            run(&local),
            run(&distributed),
            "{strategy}: local vs 1-node distributed reports differ"
        );
    }
}

#[test]
fn distributed_reports_stamp_remote_node_timings() {
    let (img, params) = workload(96, 5, 11);
    let daemon = InProcessDaemon::spawn(2, 2).expect("loopback daemon");
    let engine = Engine::distributed(&[daemon.addr()]).expect("1-node distributed cluster");
    let report = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img, params)
                .seed(9)
                .iterations(2_000),
        )
        .expect("spec validates")
        .wait()
        .expect("job completes");
    assert_eq!(report.strategy, "sequential");
    assert_eq!(report.iterations, 2_000);
    assert_eq!(
        report.node_timings.len(),
        1,
        "the daemon stamps exactly one node timing"
    );
    assert_eq!(report.node_timings[0].node.index(), 0);
    assert!(report.node_timings[0].busy <= report.total_time + report.node_timings[0].busy);
}
