//! Contract tests for the sharded (eq. 4) execution backend: byte-for-byte
//! equivalence with the local backend on a 1-node cluster, full strategy
//! coverage behind the unchanged `JobSpec`/`JobHandle` surface, admission
//! throttling, split-job merging, and the "more nodes is no slower"
//! regression against `theory::eq4_time`.

use pmcmc::parallel::theory::eq4_time;
use pmcmc::prelude::*;
use std::time::{Duration, Instant};

fn workload(size: u32, n: usize, seed: u64) -> (GrayImage, ModelParams) {
    let spec = SceneSpec {
        width: size,
        height: size,
        n_circles: n,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(seed);
    let scene = generate(&spec, &mut rng);
    let img = scene.render(&mut rng);
    let mut params = ModelParams::new(size, size, n as f64, 8.0);
    params.noise_sd = 0.15;
    (img, params)
}

/// Everything deterministic a report carries, with float fields captured
/// bit-for-bit (wall times and node timings are excluded — they are the
/// only non-deterministic fields by design).
fn report_fingerprint(r: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{}|{:?}|iters={}",
        r.strategy, r.validity, r.iterations
    );
    let _ = write!(
        out,
        "|parts={}|lp={:016x}",
        r.diagnostics.partitions,
        r.diagnostics.log_posterior.to_bits()
    );
    if let Some(acc) = r.diagnostics.acceptance_rate {
        let _ = write!(out, "|acc={:016x}", acc.to_bits());
    }
    for note in &r.diagnostics.notes {
        let _ = write!(out, "|note={note}");
    }
    for p in &r.phases {
        let _ = write!(out, "|phase={}", p.phase);
    }
    for c in r.detected() {
        let _ = write!(
            out,
            "|c={:016x},{:016x},{:016x}",
            c.x.to_bits(),
            c.y.to_bits(),
            c.r.to_bits()
        );
    }
    out
}

#[test]
fn local_and_one_node_sharded_reports_are_byte_identical() {
    let (img, params) = workload(160, 9, 77);
    let local = Engine::new(3).expect("local engine");
    let sharded = Engine::sharded(ClusterTopology::new(1, 3)).expect("1-node cluster");
    for strategy in ["periodic", "speculative", "mc3", "blind"] {
        let run = |engine: &Engine| {
            let spec: StrategySpec = strategy.parse().expect("registered name");
            let report = engine
                .submit(
                    JobSpec::new(spec, img.clone(), params.clone())
                        .seed(33)
                        .iterations(8_000),
                )
                .expect("spec validates")
                .wait()
                .expect("job completes");
            report_fingerprint(&report)
        };
        assert_eq!(
            run(&local),
            run(&sharded),
            "{strategy}: local vs 1-node sharded reports differ"
        );
    }
}

#[test]
fn sharded_backend_runs_every_registered_strategy() {
    let (img, params) = workload(96, 5, 3);
    let engine = Engine::sharded(ClusterTopology::new(2, 2)).expect("2x2 cluster");
    assert_eq!(engine.backend().name(), "sharded");
    assert_eq!(engine.backend().topology().total_threads(), 4);
    let specs: Vec<JobSpec> = StrategySpec::all()
        .into_iter()
        .map(|s| {
            JobSpec::new(s, img.clone(), params.clone())
                .seed(11)
                .iterations(2_000)
        })
        .collect();
    let batch = engine.submit_batch(specs).expect("batch validates");
    let results = batch.wait_all();
    assert_eq!(results.len(), StrategySpec::all().len());
    for (result, spec) in results.iter().zip(StrategySpec::all()) {
        let report = result
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed on the cluster: {e}", spec.name()));
        assert_eq!(report.strategy, spec.name());
        assert!(report.iterations > 0);
        assert_eq!(
            report.node_timings.len(),
            1,
            "{}: whole-job placement stamps exactly one node",
            spec.name()
        );
        assert!(report.node_timings[0].node.index() < 2);
    }
}

#[test]
fn sharded_admission_throttles_submission() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (img, params) = workload(96, 5, 5);
    // One node, one worker, ONE in-flight slot: a second submission must
    // block until the first job releases the node.
    let engine = Arc::new(Engine::with_backend(
        ShardedBackend::new(ClusterTopology::new(1, 1).max_in_flight(1)).expect("1x1 cluster"),
    ));
    let first = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                .seed(1)
                .iterations(500_000_000)
                .progress_stride(256),
        )
        .expect("first job admitted");
    // Wait until the first job demonstrably runs.
    let _ = first.events().recv().expect("first job emits events");

    let submitted = Arc::new(AtomicBool::new(false));
    let (engine2, submitted2) = (Arc::clone(&engine), Arc::clone(&submitted));
    let (img2, params2) = (img.clone(), params.clone());
    let second = std::thread::spawn(move || {
        let handle = engine2
            .submit(
                JobSpec::new(StrategySpec::Sequential, img2, params2)
                    .seed(2)
                    .iterations(500),
            )
            .expect("second job admitted eventually");
        submitted2.store(true, Ordering::SeqCst);
        handle
    });
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        !submitted.load(Ordering::SeqCst),
        "submission did not throttle on a saturated node"
    );

    first.cancel();
    assert!(matches!(first.wait(), Err(RunError::Cancelled { .. })));
    let second = second.join().expect("second submitter");
    let report = second.wait().expect("second job completes after the first");
    assert_eq!(report.iterations, 500);
    assert!(
        report.node_timings[0].queued >= Duration::from_millis(100),
        "queue wait should cover the admission stall, got {:?}",
        report.node_timings[0].queued
    );
}

#[test]
fn more_nodes_is_no_slower_and_matches_eq4_ordering() {
    let (img, params) = workload(96, 5, 9);
    const JOBS: usize = 4;

    // Calibrate the per-job budget so one job costs enough wall time for
    // scheduling differences to dominate noise.
    let mut budget: u64 = 20_000;
    let calib = Engine::sharded(ClusterTopology::new(1, 2).max_in_flight(1)).expect("cluster");
    let t0 = Instant::now();
    calib
        .submit(
            JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                .seed(1)
                .iterations(budget),
        )
        .expect("calibration job")
        .wait()
        .expect("calibration completes");
    let per_job = t0.elapsed();
    if per_job < Duration::from_millis(100) {
        let scale = (100.0 / per_job.as_secs_f64().max(1e-4) / 1_000.0).ceil() as u64;
        budget *= scale.max(1);
    }

    // A partitionable workload: JOBS independent same-budget jobs. With
    // one admission slot per node, an s-node cluster runs s of them at a
    // time — greedy list scheduling over jobs.
    let run_cluster = |nodes: usize| -> (Duration, Vec<usize>) {
        let engine =
            Engine::sharded(ClusterTopology::new(nodes, 2).max_in_flight(1)).expect("cluster");
        let specs: Vec<JobSpec> = (0..JOBS)
            .map(|i| {
                JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                    .seed(i as u64)
                    .iterations(budget)
            })
            .collect();
        let t0 = Instant::now();
        let results = engine.submit_batch(specs).expect("batch").wait_all();
        let elapsed = t0.elapsed();
        let nodes_used: Vec<usize> = results
            .iter()
            .map(|r| {
                r.as_ref().expect("job completes").node_timings[0]
                    .node
                    .index()
            })
            .collect();
        (elapsed, nodes_used)
    };

    // Two interleaved measurements per topology, keeping the minimum:
    // this test shares the process with CPU-heavy siblings, and min-of-two
    // filters out a transient load spike landing on one measurement.
    let (t1a, nodes1) = run_cluster(1);
    let (t2a, nodes2) = run_cluster(2);
    let (t1b, _) = run_cluster(1);
    let (t2b, _) = run_cluster(2);
    let t1 = t1a.min(t1b);
    let t2 = t2a.min(t2b);
    assert!(nodes1.iter().all(|&n| n == 0));
    assert!(
        nodes2.contains(&1),
        "2-node cluster never used its second node: {nodes2:?}"
    );

    // eq. (4) with everything parallelisable (q_g = 0, no speculation):
    // the predicted makespan of N total iterations on s single-slot
    // machines is N·τ/s — prediction says 2 nodes strictly beat 1.
    let tau = 1e-6;
    let total_iters = (JOBS as u64 * budget) as f64;
    let pred1 = eq4_time(total_iters, 0.0, tau, tau, 1, 1, 0.0, 0.0);
    let pred2 = eq4_time(total_iters, 0.0, tau, tau, 2, 1, 0.0, 0.0);
    assert!(pred2 < pred1, "eq4 must predict a speedup from more nodes");

    // The measured ordering must agree with the prediction: more nodes is
    // no slower on a partitionable workload. The ideal ratio is 0.5; on a
    // core-starved machine concurrent nodes time-slice one CPU and the
    // ratio approaches 1.0, so the assertion is "no slower" with
    // scheduling-noise slack rather than "twice as fast".
    assert!(
        t2 <= t1.mul_f64(1.25),
        "2-node cluster slower than 1-node: {t2:?} vs {t1:?} \
         (eq4 predicted {pred2:.3}s vs {pred1:.3}s)"
    );
}

#[test]
fn split_placement_merges_per_node_reports() {
    // A wide image with artifacts in both halves, so each node's stripe
    // has real work and the seam exercises the duplicate merge.
    let (img, params) = workload(192, 8, 21);
    let engine = Engine::with_backend(
        ShardedBackend::new(ClusterTopology::new(2, 2))
            .expect("2x2 cluster")
            .placement(ShardPlacement::SplitJobs),
    );
    let report = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                .seed(7)
                .iterations(30_000),
        )
        .expect("spec validates")
        .wait()
        .expect("split job completes");

    assert_eq!(report.strategy, "sequential");
    assert_eq!(report.diagnostics.partitions, 2, "one stripe per node");
    assert_eq!(report.node_timings.len(), 2, "one timing per node");
    let mut nodes: Vec<usize> = report.node_timings.iter().map(|t| t.node.index()).collect();
    nodes.sort_unstable();
    assert_eq!(nodes, vec![0, 1]);
    assert!(report.phase("chains").is_some());
    assert!(report.phase("merge").is_some());
    assert_eq!(
        report.validity,
        Validity::Heuristic,
        "striping an exact scheme is a cluster-scale heuristic"
    );
    assert!(
        report
            .diagnostics
            .notes
            .iter()
            .any(|n| n.contains("sharded-split")),
        "merge provenance note missing: {:?}",
        report.diagnostics.notes
    );
    assert!(report.iterations > 0);
    // The merged configuration must be a valid full-image configuration.
    let model = pmcmc::core::NucleiModel::new(&img, params.clone());
    report
        .config
        .verify_consistency(&model)
        .expect("merged config consistent with the full-image model");
    // No two merged detections may survive within the merge radius of
    // each other when they came from different stripes — the duplicate
    // clustering collapsed the seam.
    for (i, a) in report.detected().iter().enumerate() {
        for b in report.detected().iter().skip(i + 1) {
            assert!(
                a.centre_distance(b) > 1.0,
                "coincident circles after the split merge"
            );
        }
    }

    // Same seed, same topology: the split path is deterministic too.
    let again = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                .seed(7)
                .iterations(30_000),
        )
        .expect("spec validates")
        .wait()
        .expect("split job completes");
    assert_eq!(report_fingerprint(&report), report_fingerprint(&again));
}

#[test]
fn split_placement_on_one_node_degenerates_to_local() {
    let (img, params) = workload(128, 6, 13);
    let local = Engine::new(2).expect("local engine");
    let split = Engine::with_backend(
        ShardedBackend::new(ClusterTopology::new(1, 2))
            .expect("1-node cluster")
            .placement(ShardPlacement::SplitJobs),
    );
    let run = |engine: &Engine| {
        let report = engine
            .submit(
                JobSpec::new(StrategySpec::Sequential, img.clone(), params.clone())
                    .seed(5)
                    .iterations(6_000),
            )
            .expect("spec validates")
            .wait()
            .expect("job completes");
        report_fingerprint(&report)
    };
    assert_eq!(run(&local), run(&split));
}

#[test]
fn sharded_cancellation_stops_split_jobs() {
    let (img, params) = workload(160, 6, 17);
    let engine = Engine::with_backend(
        ShardedBackend::new(ClusterTopology::new(2, 1))
            .expect("2-node cluster")
            .placement(ShardPlacement::SplitJobs),
    );
    let handle = engine
        .submit(
            JobSpec::new(StrategySpec::Sequential, img, params)
                .seed(3)
                .iterations(500_000_000)
                .progress_stride(256),
        )
        .expect("spec validates");
    // The first event proves the stripes are dispatched.
    assert_eq!(
        handle.events().recv().expect("split job emits events"),
        Event::PhaseStarted { phase: "chains" }
    );
    handle.cancel();
    match handle.wait() {
        Err(RunError::Cancelled { .. }) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}
