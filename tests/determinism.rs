//! Reproducibility guarantees across the public API: identical seeds give
//! identical results, including for the parallel drivers regardless of
//! thread count (DESIGN.md: "results depend on the partition schedule, not
//! on OS scheduling").

use pmcmc::prelude::*;

fn model() -> (NucleiModel, Vec<Circle>, GrayImage) {
    let spec = SceneSpec {
        width: 160,
        height: 160,
        n_circles: 9,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(77);
    let sc = generate(&spec, &mut rng);
    let img = sc.render(&mut rng);
    let params = ModelParams::new(160, 160, 9.0, 8.0);
    (NucleiModel::new(&img, params.clone()), sc.circles, img)
}

fn fingerprint(circles: &[Circle]) -> (usize, f64) {
    let sum: f64 = circles
        .iter()
        .map(|c| c.x * 3.0 + c.y * 7.0 + c.r * 11.0)
        .sum();
    (circles.len(), sum)
}

#[test]
fn scene_generation_is_deterministic() {
    let (_, t1, img1) = model();
    let (_, t2, img2) = model();
    assert_eq!(fingerprint(&t1), fingerprint(&t2));
    assert_eq!(img1, img2);
}

#[test]
fn periodic_identical_across_thread_counts() {
    let (m, _, _) = model();
    let run = |threads: usize| {
        let mut ps = PeriodicSampler::new(
            &m,
            42,
            PeriodicOptions {
                global_phase_iters: 100,
                scheme: PartitionScheme::Corner,
                threads,
                ..PeriodicOptions::default()
            },
        );
        ps.run(20_000);
        fingerprint(ps.config().circles())
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(one.0, two.0, "circle count differs between 1 and 2 threads");
    assert!((one.1 - two.1).abs() < 1e-6, "{} vs {}", one.1, two.1);
    assert_eq!(one.0, eight.0);
    assert!((one.1 - eight.1).abs() < 1e-6);
}

#[test]
fn blind_identical_across_pool_sizes() {
    let (_, truth, img) = model();
    let base = ModelParams::new(160, 160, truth.len() as f64, 8.0);
    let opts = BlindOptions {
        chain: SubChainOptions {
            max_iters: 20_000,
            ..SubChainOptions::default()
        },
        ..BlindOptions::default()
    };
    let run = |threads: usize| {
        let pool = WorkerPool::new(threads);
        let res = pmcmc::parallel::run_blind(&img, &base, &opts, &pool, 5);
        fingerprint(&res.merged)
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.0, b.0);
    assert!((a.1 - b.1).abs() < 1e-6);
}

#[test]
fn intelligent_identical_across_pool_sizes() {
    let spec = SceneSpec {
        width: 224,
        height: 224,
        radius_mean: 8.0,
        radius_sd: 0.4,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.04,
        ..SceneSpec::default()
    };
    let clusters = [
        ClusterSpec {
            cx: 56.0,
            cy: 56.0,
            n: 3,
            spread: 14.0,
        },
        ClusterSpec {
            cx: 168.0,
            cy: 168.0,
            n: 4,
            spread: 18.0,
        },
    ];
    let mut rng = Xoshiro256::new(3);
    let sc = generate_clustered(&spec, &clusters, &mut rng);
    let img = sc.render(&mut rng);
    let base = ModelParams::new(224, 224, 7.0, 8.0);
    let opts = SubChainOptions {
        max_iters: 20_000,
        ..SubChainOptions::default()
    };
    let run = |threads: usize| {
        let pool = WorkerPool::new(threads);
        let res = pmcmc::parallel::run_intelligent(
            &img,
            &base,
            &IntelligentPartitioner::default(),
            &opts,
            &pool,
            9,
        );
        fingerprint(&res.merged)
    };
    let a = run(1);
    let b = run(6);
    assert_eq!(a.0, b.0);
    assert!((a.1 - b.1).abs() < 1e-6);
}

/// Everything deterministic a report carries, with float fields captured
/// bit-for-bit (wall times are excluded — they are the only
/// non-deterministic fields by design).
fn report_fingerprint(r: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{}|{:?}|iters={}",
        r.strategy, r.validity, r.iterations
    );
    let _ = write!(
        out,
        "|parts={}|lp={:016x}",
        r.diagnostics.partitions,
        r.diagnostics.log_posterior.to_bits()
    );
    if let Some(acc) = r.diagnostics.acceptance_rate {
        let _ = write!(out, "|acc={:016x}", acc.to_bits());
    }
    for note in &r.diagnostics.notes {
        let _ = write!(out, "|note={note}");
    }
    for p in &r.phases {
        let _ = write!(out, "|phase={}", p.phase);
    }
    for c in r.detected() {
        let _ = write!(
            out,
            "|c={:016x},{:016x},{:016x}",
            c.x.to_bits(),
            c.y.to_bits(),
            c.r.to_bits()
        );
    }
    out
}

#[test]
fn same_seed_job_specs_produce_byte_identical_reports() {
    let (_, truth, img) = model();
    let params = ModelParams::new(160, 160, truth.len() as f64, 8.0);
    let engine = Engine::new(3).expect("worker count is positive");
    // Every registered strategy: the span-kernel fast paths must not
    // perturb a single bit of any scheme's report.
    for strategy in [
        "sequential",
        "periodic",
        "speculative",
        "mc3",
        "intelligent",
        "blind",
        "naive",
    ] {
        let run = || {
            let spec: StrategySpec = strategy.parse().expect("registered name");
            let report = engine
                .submit(
                    JobSpec::new(spec, img.clone(), params.clone())
                        .seed(33)
                        .iterations(8_000),
                )
                .expect("spec validates")
                .wait()
                .expect("job completes");
            report_fingerprint(&report)
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "{strategy} report not byte-identical");
    }
}

#[test]
fn forced_scalar_and_simd_paths_give_byte_identical_reports() {
    use pmcmc::core::simd::{backend, force_backend, Backend};
    // The lane kernels compute masks only and accumulate gains in the
    // same scalar order as the fallback, so flipping the backend must not
    // perturb a single bit of any strategy's report. (On hosts without
    // AVX2 both runs take the scalar path and the test is vacuous but
    // still valid.)
    let (_, truth, img) = model();
    let params = ModelParams::new(160, 160, truth.len() as f64, 8.0);
    let engine = Engine::new(3).expect("worker count is positive");
    let detected = backend();
    for strategy in [
        "sequential",
        "periodic",
        "speculative",
        "mc3",
        "intelligent",
        "blind",
        "naive",
    ] {
        let run = |b: Backend| {
            force_backend(b);
            let spec: StrategySpec = strategy.parse().expect("registered name");
            let report = engine
                .submit(
                    JobSpec::new(spec, img.clone(), params.clone())
                        .seed(61)
                        .iterations(6_000),
                )
                .expect("spec validates")
                .wait()
                .expect("job completes");
            report_fingerprint(&report)
        };
        let scalar = run(Backend::Scalar);
        let vector = run(Backend::Avx2);
        force_backend(detected);
        assert_eq!(
            scalar, vector,
            "{strategy} report differs between scalar and vector kernels"
        );
    }
}

#[test]
fn different_seeds_give_different_chains() {
    let (m, _, _) = model();
    let mut a = Sampler::new(&m, 1);
    let mut b = Sampler::new(&m, 2);
    a.run(5_000);
    b.run(5_000);
    let fa = fingerprint(a.config.circles());
    let fb = fingerprint(b.config.circles());
    assert!(fa != fb, "independent seeds produced identical states");
}
