//! Property tests for the distributed wire format: `decode ∘ encode = id`
//! over randomly generated images, model parameters, strategy specs and
//! run reports, plus the version gate (future-version frames must be
//! rejected, not misparsed).

use pmcmc::parallel::engine::{NodeTiming, PhaseTiming, RunDiagnostics, StrategySpec, Validity};
use pmcmc::parallel::job::wire::WireReport;
use pmcmc::parallel::{
    BlindOptions, DisputePolicy, IntelligentPartitioner, NaiveOptions, PeriodicOptions,
    SubChainOptions,
};
use pmcmc::prelude::*;
use pmcmc::runtime::wire::{
    read_frame, write_frame, FrameKind, Wire, WireError, MAGIC, WIRE_VERSION,
};
use proptest::prelude::*;
use proptest::strategy::Strategy;
use std::time::Duration;

fn arb_image() -> impl Strategy<Value = GrayImage> {
    (1u32..9, 1u32..9, any::<u64>()).prop_map(|(w, h, seed)| {
        use rand::Rng;
        let mut rng = Xoshiro256::new(seed);
        GrayImage::from_fn(w, h, |_, _| rng.gen::<f32>() * 2.0 - 0.5)
    })
}

fn arb_params() -> impl Strategy<Value = ModelParams> {
    (
        (1u32..512, 1u32..512, 0.1f64..50.0, 2.0f64..20.0),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.5),
    )
        .prop_map(|((w, h, count, r_mean), (gamma, fg, bg, noise))| {
            let mut p = ModelParams::new(w, h, count, r_mean);
            p.overlap_gamma = gamma;
            p.fg = fg;
            p.bg = bg;
            p.noise_sd = noise;
            p
        })
}

fn arb_spec() -> impl Strategy<Value = StrategySpec> {
    (
        0u8..7,
        (1u64..100_000, 1usize..16, 0.01f64..2.0, 1u64..10_000),
        (1u32..6, 1u32..6, 0.5f64..3.0, 0.5f64..20.0),
        (0.0f32..1.0, 1usize..100, 0.0f64..5.0, 1u64..1_000),
        any::<bool>(),
    )
        .prop_map(
            |(
                variant,
                (g, lanes, heat, seg),
                (cols, rows, margin, eps),
                (theta, win, tol, stride),
                flag,
            )| {
                let chain = SubChainOptions {
                    theta,
                    conv_window: win,
                    conv_tol: tol,
                    conv_stride: stride,
                    max_iters: g * 4,
                    settle_frac: tol / 10.0,
                };
                match variant {
                    0 => StrategySpec::Sequential,
                    1 => StrategySpec::Periodic(PeriodicOptions {
                        global_phase_iters: g,
                        scheme: if flag {
                            PartitionScheme::Corner
                        } else {
                            PartitionScheme::Grid {
                                xm: i64::from(cols) * 16,
                                ym: i64::from(rows) * 16,
                            }
                        },
                        threads: lanes,
                        speculative_global_lanes: lanes / 2,
                    }),
                    2 => StrategySpec::Speculative { lanes },
                    3 => StrategySpec::Mc3 {
                        chains: lanes.max(2),
                        heat,
                        segment_len: seg,
                    },
                    4 => StrategySpec::Intelligent {
                        partitioner: IntelligentPartitioner {
                            theta,
                            min_gap: cols,
                        },
                        chain,
                    },
                    5 => StrategySpec::Blind(BlindOptions {
                        cols,
                        rows,
                        margin_factor: margin,
                        merge_eps: eps,
                        dispute: if flag {
                            DisputePolicy::Accept
                        } else {
                            DisputePolicy::Discard
                        },
                        chain,
                    }),
                    _ => StrategySpec::Naive(NaiveOptions {
                        cols,
                        rows,
                        prior: if flag {
                            pmcmc::parallel::NaivePrior::UniformSplit
                        } else {
                            pmcmc::parallel::NaivePrior::DensityEstimate
                        },
                        chain,
                    }),
                }
            },
        )
}

fn arb_circle() -> impl Strategy<Value = Circle> {
    (0.0f64..256.0, 0.0f64..256.0, 1.0f64..20.0).prop_map(|(x, y, r)| Circle::new(x, y, r))
}

fn arb_report() -> impl Strategy<Value = WireReport> {
    (
        (0u8..3, 0u8..7, any::<u64>(), any::<u64>()),
        prop::collection::vec(arb_circle(), 0..8),
        (0u64..u64::MAX / 2, 0u32..1_000_000_000),
        (0usize..16, -1.0e6f64..1.0e6, 0.0f64..1.0, any::<bool>()),
        (0u64..64, 0u64..10_000, 0u64..10_000),
    )
        .prop_map(
            |(
                (validity, phase_pick, iters, _),
                circles,
                (secs, nanos),
                (partitions, lp, acc, has_acc),
                (node, queued_ms, busy_ms),
            )| {
                static PHASES: [&str; 7] = [
                    "chain", "chains", "global", "local", "merge", "overhead", "rounds",
                ];
                let phase = PHASES[phase_pick as usize];
                WireReport {
                    strategy: phase.to_owned(), // any string payload will do
                    validity: match validity {
                        0 => Validity::Exact,
                        1 => Validity::Heuristic,
                        _ => Validity::Broken,
                    },
                    circles,
                    phases: vec![PhaseTiming {
                        phase,
                        duration: Duration::new(secs, nanos),
                    }],
                    total_time: Duration::new(secs, nanos),
                    iterations: iters,
                    diagnostics: RunDiagnostics {
                        partitions,
                        acceptance_rate: has_acc.then_some(acc),
                        log_posterior: lp,
                        notes: vec![format!("prop-note-{partitions}")],
                        perf: None,
                    },
                    node_timings: vec![NodeTiming {
                        node: NodeId(node as usize),
                        queued: Duration::from_millis(queued_ms),
                        busy: Duration::from_millis(busy_ms),
                    }],
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn images_round_trip(img in arb_image()) {
        let back = GrayImage::from_wire_bytes(&img.to_wire_bytes()).unwrap();
        prop_assert_eq!(back.width(), img.width());
        prop_assert_eq!(back.height(), img.height());
        // Pixels must survive bit-for-bit (f32 bit patterns on the wire).
        prop_assert!(back
            .as_slice()
            .iter()
            .zip(img.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn params_round_trip(params in arb_params()) {
        let back = ModelParams::from_wire_bytes(&params.to_wire_bytes()).unwrap();
        prop_assert_eq!(back, params);
    }

    #[test]
    fn strategy_specs_round_trip(spec in arb_spec()) {
        let back = StrategySpec::from_wire_bytes(&spec.to_wire_bytes()).unwrap();
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn reports_round_trip(report in arb_report()) {
        let back = WireReport::from_wire_bytes(&report.to_wire_bytes()).unwrap();
        // Float fields ride as bit patterns, so derived PartialEq is exact.
        prop_assert_eq!(back, report);
    }

    #[test]
    fn truncated_garbage_is_an_error_not_a_panic(
        report in arb_report(),
        cut in 0usize..64,
    ) {
        let bytes = report.to_wire_bytes();
        prop_assume!(cut < bytes.len());
        // Every strict prefix must decode to an error, never panic or
        // silently succeed (the `finish` trailing-bytes check guards the
        // other direction).
        prop_assert!(WireReport::from_wire_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn future_version_frames_are_rejected() {
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::Heartbeat, &[]).unwrap();
    assert_eq!(buf[0..2], MAGIC);
    assert_eq!(buf[2], WIRE_VERSION);

    // Bump the version byte: a v2 peer must be refused, not misparsed.
    buf[2] = WIRE_VERSION + 1;
    match read_frame(&mut buf.as_slice()) {
        Err(WireError::UnsupportedVersion(v)) => assert_eq!(v, WIRE_VERSION + 1),
        other => panic!("future version must be rejected, got {other:?}"),
    }

    // The unmodified frame still reads back.
    buf[2] = WIRE_VERSION;
    let frame = read_frame(&mut buf.as_slice()).unwrap();
    assert_eq!(frame.kind, FrameKind::Heartbeat);
    assert!(frame.payload.is_empty());
}
