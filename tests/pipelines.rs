//! Cross-crate integration tests: every parallelisation scheme runs the
//! full detect-circles pipeline on the same synthetic scene and must reach
//! comparable quality.

use pmcmc::prelude::*;

/// The shared test scene: 12 cells on 192², moderate noise.
fn scene(seed: u64) -> (NucleiModel, Vec<Circle>, GrayImage) {
    let spec = SceneSpec {
        width: 192,
        height: 192,
        n_circles: 12,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.05,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(seed);
    let sc = generate(&spec, &mut rng);
    let img = sc.render(&mut rng);
    let mut params = ModelParams::new(192, 192, 12.0, 8.0);
    params.noise_sd = 0.15;
    (NucleiModel::new(&img, params), sc.circles, img)
}

/// The tentpole engine contract: every registered strategy runs the same
/// workload on the shared 192² scene through the typed job API
/// (`StrategySpec` → `JobSpec` → `JobHandle`), and every *exact-validity*
/// scheme reaches an F1 within 0.05 of the sequential baseline (they
/// sample the same posterior, so with a fixed seed and a 60k budget their
/// detection quality must coincide up to Monte-Carlo noise).
#[test]
fn strategy_registry_sweeps_all_schemes_with_comparable_quality() {
    let (_, truth, img) = scene(7);
    let mut params = ModelParams::new(192, 192, truth.len() as f64, 8.0);
    params.noise_sd = 0.15;
    let engine = Engine::new(4).expect("worker count is positive");
    let job = |strategy: StrategySpec| {
        JobSpec::new(strategy, img.clone(), params.clone())
            .seed(42)
            .iterations(60_000)
    };

    let baseline = engine
        .submit(job(StrategySpec::Sequential))
        .expect("sequential spec validates")
        .wait()
        .expect("sequential baseline completes");
    let f1_seq = match_circles(&truth, baseline.detected(), 5.0).f1();
    assert!(f1_seq >= 0.8, "sequential baseline too weak: F1 {f1_seq}");

    let mut swept = Vec::new();
    for strategy in StrategySpec::all() {
        let name = strategy.name();
        let report = engine
            .submit(job(strategy))
            .expect("spec validates")
            .wait()
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(report.strategy, name);
        assert!(report.iterations > 0, "{} ran nothing", report.strategy);
        let f1 = match_circles(&truth, report.detected(), 5.0).f1();
        if report.validity.is_exact() {
            assert!(
                f1 >= f1_seq - 0.05,
                "{}: exact scheme F1 {f1:.3} below sequential {f1_seq:.3} - 0.05",
                report.strategy
            );
        }
        swept.push(report.strategy.clone());
    }
    // The sweep covered all six parallelisation schemes plus the baseline.
    for name in [
        "sequential",
        "periodic",
        "speculative",
        "mc3",
        "intelligent",
        "blind",
        "naive",
    ] {
        assert!(swept.iter().any(|s| s == name), "{name} missing from sweep");
    }
}

#[test]
fn sequential_pipeline_detects_scene() {
    let (model, truth, _) = scene(1);
    let mut s = Sampler::new_empty(&model, 10);
    s.run(60_000);
    let m = match_circles(&truth, s.config.circles(), 5.0);
    assert!(m.f1() >= 0.85, "sequential F1 {}", m.f1());
    s.config.verify_consistency(&model).unwrap();
}

#[test]
fn periodic_pipeline_matches_sequential_quality() {
    let (model, truth, _) = scene(2);
    let mut ps = PeriodicSampler::new(
        &model,
        11,
        PeriodicOptions {
            global_phase_iters: 128,
            scheme: PartitionScheme::Corner,
            threads: 4,
            ..PeriodicOptions::default()
        },
    );
    ps.run(60_000);
    let m = match_circles(&truth, ps.config().circles(), 5.0);
    assert!(m.f1() >= 0.85, "periodic F1 {}", m.f1());
    ps.config().verify_consistency(&model).unwrap();
}

#[test]
fn periodic_grid_scheme_pipeline() {
    let (model, truth, _) = scene(3);
    let mut ps = PeriodicSampler::new(
        &model,
        12,
        PeriodicOptions {
            global_phase_iters: 128,
            scheme: PartitionScheme::Grid { xm: 96, ym: 96 },
            threads: 4,
            ..PeriodicOptions::default()
        },
    );
    ps.run(60_000);
    let m = match_circles(&truth, ps.config().circles(), 5.0);
    assert!(m.f1() >= 0.8, "grid periodic F1 {}", m.f1());
}

#[test]
fn speculative_pipeline_matches_sequential_quality() {
    let (model, truth, _) = scene(4);
    let mut s = SpeculativeSampler::new(&model, 13, 4);
    s.run(60_000);
    let m = match_circles(&truth, s.config.circles(), 5.0);
    assert!(m.f1() >= 0.85, "speculative F1 {}", m.f1());
    s.config.verify_consistency(&model).unwrap();
}

#[test]
fn mc3_pipeline_detects_scene() {
    let (model, truth, _) = scene(5);
    let mut mc3 = Mc3::new(&model, 3, 0.4, 14);
    mc3.run(120, 500);
    let m = match_circles(&truth, mc3.cold().config.circles(), 5.0);
    assert!(m.f1() >= 0.75, "mc3 F1 {}", m.f1());
}

#[test]
fn blind_pipeline_on_uniform_scene() {
    let (_, truth, img) = scene(6);
    let base = ModelParams::new(192, 192, truth.len() as f64, 8.0);
    let pool = WorkerPool::new(4);
    let opts = BlindOptions {
        chain: SubChainOptions {
            max_iters: 60_000,
            ..SubChainOptions::default()
        },
        ..BlindOptions::default()
    };
    let res = pmcmc::parallel::run_blind(&img, &base, &opts, &pool, 15);
    let m = match_circles(&truth, &res.merged, 5.0);
    assert!(m.f1() >= 0.8, "blind F1 {}", m.f1());
}

#[test]
fn intelligent_pipeline_on_clustered_scene() {
    let spec = SceneSpec {
        width: 256,
        height: 256,
        radius_mean: 8.0,
        radius_sd: 0.5,
        radius_min: 5.0,
        radius_max: 12.0,
        noise_sd: 0.04,
        ..SceneSpec::default()
    };
    let clusters = [
        ClusterSpec {
            cx: 60.0,
            cy: 64.0,
            n: 4,
            spread: 18.0,
        },
        ClusterSpec {
            cx: 190.0,
            cy: 190.0,
            n: 6,
            spread: 26.0,
        },
    ];
    let mut rng = Xoshiro256::new(7);
    let sc = generate_clustered(&spec, &clusters, &mut rng);
    let img = sc.render(&mut rng);
    let base = ModelParams::new(256, 256, 10.0, 8.0);
    let pool = WorkerPool::new(4);
    let res = pmcmc::parallel::run_intelligent(
        &img,
        &base,
        &IntelligentPartitioner::default(),
        &SubChainOptions {
            max_iters: 60_000,
            ..SubChainOptions::default()
        },
        &pool,
        16,
    );
    assert!(res.partitions.len() >= 2, "pre-processor found no corridor");
    let m = match_circles(&sc.circles, &res.merged, 5.0);
    assert!(m.f1() >= 0.8, "intelligent F1 {}", m.f1());
}

#[test]
fn all_exact_methods_agree_on_posterior_count() {
    // Sequential, periodic and speculative sample the same posterior: their
    // long-run mean circle counts must agree. A strong overlap penalty
    // removes the slow-mixing "two overlapping circles on one blob" mode so
    // single-seed tail means are a sharp comparison.
    let (mut model, truth, _) = scene(8);
    model.params.overlap_gamma = 0.5;
    let model = model;
    let tail = |counts: &[usize]| -> f64 {
        let t = &counts[counts.len() / 2..];
        t.iter().sum::<usize>() as f64 / t.len() as f64
    };

    let mut seq = Sampler::new_empty(&model, 30);
    let mut seq_counts = Vec::new();
    for _ in 0..120 {
        seq.run(500);
        seq_counts.push(seq.config.len());
    }

    let mut per = PeriodicSampler::new(&model, 31, PeriodicOptions::default());
    let mut per_counts = Vec::new();
    for _ in 0..120 {
        per.run(500);
        per_counts.push(per.config().len());
    }

    let mut spec = SpeculativeSampler::new(&model, 32, 4);
    let mut spec_counts = Vec::new();
    for _ in 0..120 {
        spec.run(500);
        spec_counts.push(spec.config.len());
    }

    let (a, b, c) = (tail(&seq_counts), tail(&per_counts), tail(&spec_counts));
    let n = truth.len() as f64;
    for (label, v) in [("sequential", a), ("periodic", b), ("speculative", c)] {
        assert!(
            (v - n).abs() <= 2.0,
            "{label} posterior count mean {v} far from truth {n}"
        );
    }
    assert!((a - b).abs() <= 1.5, "seq {a} vs periodic {b}");
    assert!((a - c).abs() <= 1.5, "seq {a} vs speculative {c}");
}

#[test]
fn stained_rgb_pipeline_end_to_end() {
    // The paper's §III front-end: colour micrograph → colour-emphasis
    // filter → intensity image → RJMCMC. The whole chain must still find
    // the planted nuclei.
    use pmcmc::imaging::color::{emphasize_color, render_stained};
    const STAIN: [f32; 3] = [0.55, 0.15, 0.55];
    const TISSUE: [f32; 3] = [0.88, 0.80, 0.76];
    let spec = SceneSpec {
        width: 160,
        height: 160,
        n_circles: 8,
        radius_mean: 8.0,
        radius_sd: 0.8,
        radius_min: 5.0,
        radius_max: 12.0,
        ..SceneSpec::default()
    };
    let mut rng = Xoshiro256::new(21);
    let sc = generate(&spec, &mut rng);
    let rgb = render_stained(160, 160, &sc.circles, STAIN, TISSUE, 1.0, 0.03, &mut rng);
    let intensity = emphasize_color(&rgb, STAIN, 0.3);
    let mut params = ModelParams::new(160, 160, 8.0, 8.0);
    params.noise_sd = 0.15;
    let model = NucleiModel::new(&intensity, params);
    let mut s = Sampler::new_empty(&model, 5);
    s.run(50_000);
    let m = match_circles(&sc.circles, s.config.circles(), 5.0);
    assert!(m.f1() >= 0.85, "stained pipeline F1 {}", m.f1());
}
